"""Best-test strategy evaluation (paper §8).

The paper gives no table for the strategy unit ("best test strategies
have been successfully tried on digital circuits"), so the evaluation is
the natural one: sequential fault isolation.  Starting from the output
measurement alone, each planner repeatedly picks the next probe; after
every probe the engine re-diagnoses, and the episode ends when the
single-fault candidate set is pinned down (or every point is probed).
Reported: probes needed per planner, averaged over a fault catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.probabilistic import GdeTestPlanner, RandomProbePlanner
from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.library import three_stage_amplifier
from repro.circuit.measurements import Measurement, probe
from repro.circuit.simulate import DCSolver, OperatingPoint
from repro.core.diagnosis import DiagnosisResult, Flames
from repro.core.strategy import BestTestPlanner
from repro.experiments.runner import format_table

__all__ = [
    "EpisodeOutcome",
    "run_strategy_eval",
    "run_strategy_eval_ladder",
    "format_strategy_eval",
    "DEFAULT_FAULTS",
    "LADDER_FAULTS",
]

#: Fault catalogue used by the evaluation.
DEFAULT_FAULTS: Tuple[Fault, ...] = (
    Fault(FaultKind.SHORT, "R2"),
    Fault(FaultKind.OPEN, "R3"),
    Fault(FaultKind.OPEN, "R6"),
    Fault(FaultKind.PARAM, "R3", value=28e3),
    Fault(FaultKind.PARAM, "R4", value=4.2e3),
    Fault(FaultKind.NODE_OPEN, "T1", pin="b"),
)


@dataclass(frozen=True)
class EpisodeOutcome:
    planner: str
    fault: str
    probes_used: int
    isolated: bool
    final_candidates: Tuple[str, ...]
    culprit_found: bool = False


def _isolated(result: DiagnosisResult, target_size: int) -> bool:
    """Isolation criterion: few enough smallest minimal diagnoses.

    Judged on the hitting sets, not on suspicion ties: two overlapping
    nogoods tie every member at suspicion 1, while their *intersection*
    is what the minimal single-fault diagnoses capture.
    """
    if result.is_consistent or not result.diagnoses:
        return False
    smallest = min(d.size for d in result.diagnoses)
    leaders = [d for d in result.diagnoses if d.size == smallest]
    return len(leaders) <= target_size


def run_episode(
    engine: Flames,
    op: OperatingPoint,
    choose: Callable[[DiagnosisResult], Optional[str]],
    imprecision: float = 0.02,
    target_size: int = 3,
    start_point: str = "vs",
) -> Tuple[int, DiagnosisResult]:
    """Probe sequentially until isolation; returns (#probes, final result)."""
    measurements: List[Measurement] = [probe(op, start_point, imprecision)]
    result = engine.diagnose(measurements)
    probes_used = 1
    while not _isolated(result, target_size):
        point = choose(result)
        if point is None:
            break
        net = point[2:-1]
        measurements.append(probe(op, net, imprecision))
        result = engine.diagnose(measurements)
        probes_used += 1
    return probes_used, result


def run_strategy_eval(
    faults: Sequence[Fault] = DEFAULT_FAULTS,
    imprecision: float = 0.02,
    target_size: int = 3,
    seed: int = 7,
    golden=None,
    start_point: str = "vs",
) -> List[EpisodeOutcome]:
    golden = golden if golden is not None else three_stage_amplifier()
    engine = Flames(golden)
    planners: Dict[str, Callable[[DiagnosisResult], Optional[str]]] = {}

    fuzzy_planner = BestTestPlanner(engine)
    planners["fuzzy-entropy"] = lambda r: (
        fuzzy_planner.best(r).point if fuzzy_planner.best(r) else None
    )
    gde_planner = GdeTestPlanner(engine)
    planners["gde-probabilistic"] = lambda r: (
        gde_planner.best(r).point if gde_planner.best(r) else None
    )

    outcomes: List[EpisodeOutcome] = []
    for fault_index, fault in enumerate(faults):
        op = DCSolver(apply_fault(golden, fault)).solve()
        for name, choose in planners.items():
            probes_used, result = run_episode(
                engine, op, choose, imprecision, target_size, start_point
            )
            candidates = tuple(n for n, _ in result.ranked_components()[:4])
            outcomes.append(
                EpisodeOutcome(
                    name,
                    fault.describe(),
                    probes_used,
                    _isolated(result, target_size),
                    candidates,
                    fault.component in candidates,
                )
            )
        # The random planner is stateful (its RNG); rebuild per fault with
        # a deterministic fault-specific seed (str hashes are salted per
        # process, so hash() would make the experiment unrepeatable).
        random_planner = RandomProbePlanner(engine, seed=seed + fault_index)
        choose_random = lambda r: (
            random_planner.best(r).point if random_planner.best(r) else None
        )
        probes_used, result = run_episode(
            engine, op, choose_random, imprecision, target_size, start_point
        )
        candidates = tuple(n for n, _ in result.ranked_components()[:4])
        outcomes.append(
            EpisodeOutcome(
                "random",
                fault.describe(),
                probes_used,
                _isolated(result, target_size),
                candidates,
                fault.component in candidates,
            )
        )
    return outcomes


#: Fault catalogue for the ladder workload (more probe points, so probe
#: *order* matters more than on the three-stage amplifier).
LADDER_FAULTS: Tuple[Fault, ...] = (
    Fault(FaultKind.OPEN, "Rs2"),
    Fault(FaultKind.SHORT, "Rp3"),
    Fault(FaultKind.OPEN, "Rp1"),
    Fault(FaultKind.SHORT, "Rp5"),
)


def run_strategy_eval_ladder(
    sections: int = 5,
    faults: Sequence[Fault] = LADDER_FAULTS,
    imprecision: float = 0.01,
    target_size: int = 3,
    seed: int = 7,
) -> List[EpisodeOutcome]:
    """The same evaluation on a generated resistor ladder."""
    from repro.circuit.generators import resistor_ladder

    return run_strategy_eval(
        faults=faults,
        imprecision=imprecision,
        target_size=target_size,
        seed=seed,
        golden=resistor_ladder(sections),
        start_point=f"n{sections}",
    )


def format_strategy_eval(outcomes: Optional[List[EpisodeOutcome]] = None) -> str:
    outcomes = outcomes if outcomes is not None else run_strategy_eval()
    table = format_table(
        ["fault", "planner", "probes", "isolated", "culprit found", "top candidates"],
        [
            (o.fault, o.planner, o.probes_used, "yes" if o.isolated else "no",
             "yes" if o.culprit_found else "NO",
             ",".join(o.final_candidates))
            for o in outcomes
        ],
    )
    averages: Dict[str, List[int]] = {}
    for o in outcomes:
        averages.setdefault(o.planner, []).append(o.probes_used)
    summary = format_table(
        ["planner", "mean probes", "episodes isolated", "culprit found"],
        [
            (
                planner,
                f"{sum(counts) / len(counts):.2f}",
                sum(1 for o in outcomes if o.planner == planner and o.isolated),
                sum(1 for o in outcomes if o.planner == planner and o.culprit_found),
            )
            for planner, counts in sorted(averages.items())
        ],
    )
    return (
        "best-test strategies — sequential fault isolation\n"
        + table
        + "\n\nsummary (lower probes is better)\n"
        + summary
    )
