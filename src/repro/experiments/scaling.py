"""Scaling study: the §6 claim that fuzzy intervals avoid explosions.

The paper argues that (a) crisp intervals "contain all sorts of
inaccuracy without any distinction which can cause an explosion in the
value propagation" and (b) the weighted-nogood list "allows to restrict
the effect of explosion" in candidate sets.  This driver sweeps circuit
size over the generated single-path amplifier chains, injects a soft
gain fault mid-chain, and measures for both engines:

* the relative spread of the prediction at the chain output (value
  propagation growth),
* whether the soft fault is detected at all (crisp masking),
* the number of recorded nogoods and of minimal candidates,
* wall-clock diagnosis time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.baselines.crisp_propagation import CrispDiagnoser
from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.generators import amplifier_chain
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.core.diagnosis import Flames
from repro.experiments.runner import format_table

__all__ = ["ScalingRow", "run_scaling", "format_scaling"]


@dataclass(frozen=True)
class ScalingRow:
    stages: int
    fuzzy_spread: float
    crisp_spread: float
    fuzzy_detected: bool
    crisp_detected: bool
    fuzzy_nogoods: int
    crisp_nogoods: int
    fuzzy_candidates: int
    fuzzy_seconds: float
    crisp_seconds: float


def _relative_spread(interval, nominal: float) -> float:
    if nominal == 0.0:
        return interval.width
    return interval.width / abs(nominal)


def run_scaling(
    stage_counts: Sequence[int] = (2, 4, 6, 8, 10),
    drift_ratio: float = 1.06,
    imprecision: float = 0.01,
) -> List[ScalingRow]:
    rows: List[ScalingRow] = []
    for stages in stage_counts:
        golden = amplifier_chain(stages)
        faulty_component = f"amp{max(1, stages // 2)}"
        nominal_gain = golden.component(faulty_component).gain
        fault = Fault(
            FaultKind.PARAM, faulty_component, "gain", nominal_gain * drift_ratio
        )
        op = DCSolver(apply_fault(golden, fault)).solve()
        probes = [f"s{i}" for i in range(1, stages + 1)]
        measurements = probe_all(op, probes, imprecision=imprecision)

        fuzzy_engine = Flames(amplifier_chain(stages))
        start = time.perf_counter()
        fuzzy_result = fuzzy_engine.diagnose(measurements)
        fuzzy_seconds = time.perf_counter() - start

        crisp_engine = CrispDiagnoser(amplifier_chain(stages))
        start = time.perf_counter()
        crisp_result = crisp_engine.diagnose(measurements)
        crisp_seconds = time.perf_counter() - start

        output = f"V(s{stages})"
        nominal_output = DCSolver(golden).solve().voltage(f"s{stages}")
        rows.append(
            ScalingRow(
                stages=stages,
                fuzzy_spread=_relative_spread(
                    fuzzy_result.predictions[output], nominal_output
                ),
                crisp_spread=_relative_spread(
                    crisp_result.predictions[output], nominal_output
                ),
                fuzzy_detected=not fuzzy_result.is_consistent,
                crisp_detected=not crisp_result.is_consistent,
                fuzzy_nogoods=len(fuzzy_result.nogoods),
                crisp_nogoods=len(crisp_result.nogoods),
                fuzzy_candidates=len(fuzzy_result.diagnoses),
                fuzzy_seconds=fuzzy_seconds,
                crisp_seconds=crisp_seconds,
            )
        )
    return rows


def format_scaling(rows: List[ScalingRow] = None) -> str:
    rows = rows if rows is not None else run_scaling()
    table = format_table(
        [
            "stages",
            "fuzzy spread",
            "crisp spread",
            "fuzzy detects",
            "crisp detects",
            "fuzzy nogoods",
            "crisp nogoods",
            "candidates",
            "fuzzy s",
            "crisp s",
        ],
        [
            (
                r.stages,
                f"{r.fuzzy_spread:.3f}",
                f"{r.crisp_spread:.3f}",
                "yes" if r.fuzzy_detected else "no",
                "yes" if r.crisp_detected else "no",
                r.fuzzy_nogoods,
                r.crisp_nogoods,
                r.fuzzy_candidates,
                f"{r.fuzzy_seconds:.2f}",
                f"{r.crisp_seconds:.2f}",
            )
            for r in rows
        ],
    )
    return "scaling — soft mid-chain gain fault, fuzzy vs crisp engine\n" + table
