"""Ablations over the design choices DESIGN.md calls out.

* **conflict threshold** — how much tolerance noise the engine records
  as nogoods; swept over the figure-7 scenarios.
* **t-norm** — the conjunction combining degrees along derivations.
* **entropy term form** — the paper's literal ``Fi (*) log2(1/Fi)``
  product against the extension-principle form used by default.
* **linguistic granularity** — size of the faultiness term scale used by
  the best-test planner.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.circuit.faults import apply_fault
from repro.circuit.library import three_stage_amplifier
from repro.circuit.measurements import probe_all
from repro.circuit.simulate import DCSolver
from repro.core.diagnosis import Flames, FlamesConfig
from repro.core.strategy import BestTestPlanner
from repro.experiments.figure7 import FIGURE7_SCENARIOS, Figure7Scenario
from repro.experiments.runner import format_table
from repro.fuzzy import FuzzyInterval, fuzzy_entropy
from repro.fuzzy.entropy import entropy_term, entropy_term_product_form
from repro.fuzzy.linguistic import faultiness_scale
from repro.fuzzy.logic import T_NORMS

__all__ = [
    "run_threshold_ablation",
    "run_tnorm_ablation",
    "run_entropy_form_ablation",
    "run_granularity_ablation",
    "run_envelope_validation",
    "format_ablation",
]


def _scenario_measurements(scenario: Figure7Scenario, imprecision: float = 0.02):
    golden = three_stage_amplifier()
    op = DCSolver(apply_fault(golden, scenario.fault)).solve()
    return probe_all(op, ["vs", "v2", "v1"], imprecision=imprecision)


def run_threshold_ablation(
    thresholds: Sequence[float] = (0.01, 0.05, 0.2, 0.5),
    scenarios: Sequence[Figure7Scenario] = FIGURE7_SCENARIOS,
) -> List[Tuple[float, int, int]]:
    """(threshold, faults detected, total nogoods) over the scenarios."""
    rows = []
    for threshold in thresholds:
        engine = Flames(
            three_stage_amplifier(), FlamesConfig(conflict_threshold=threshold)
        )
        detected = 0
        nogoods = 0
        for scenario in scenarios:
            result = engine.diagnose(_scenario_measurements(scenario))
            detected += 0 if result.is_consistent else 1
            nogoods += len(result.nogoods)
        rows.append((threshold, detected, nogoods))
    return rows


def run_tnorm_ablation(
    scenarios: Sequence[Figure7Scenario] = FIGURE7_SCENARIOS,
) -> List[Tuple[str, int, float]]:
    """(t-norm, faults detected, mean top nogood degree)."""
    rows = []
    for name, t_norm in sorted(T_NORMS.items()):
        engine = Flames(three_stage_amplifier(), FlamesConfig(t_norm=t_norm))
        detected = 0
        top_degrees: List[float] = []
        for scenario in scenarios:
            result = engine.diagnose(_scenario_measurements(scenario))
            if not result.is_consistent:
                detected += 1
                top_degrees.append(result.nogoods[0].degree)
        mean_top = sum(top_degrees) / len(top_degrees) if top_degrees else 0.0
        rows.append((name, detected, mean_top))
    return rows


def run_entropy_form_ablation(
    estimations: Sequence[FuzzyInterval] = (
        FuzzyInterval(0.2, 0.3, 0.05, 0.05),
        FuzzyInterval(0.5, 0.5, 0.1, 0.1),
        FuzzyInterval(0.8, 0.9, 0.05, 0.05),
    ),
) -> List[Tuple[str, float, float]]:
    """(form, entropy centroid, entropy width) for a fixed system."""
    rows = []
    for name, term in (
        ("extension-principle", entropy_term),
        ("paper product form", entropy_term_product_form),
    ):
        ent = fuzzy_entropy(estimations, term=term)
        rows.append((name, ent.centroid, ent.width))
    return rows


def run_granularity_ablation(
    granularities: Sequence[int] = (3, 5, 7, 9),
    scenario: Figure7Scenario = FIGURE7_SCENARIOS[0],
) -> List[Tuple[int, str, float]]:
    """(granularity, recommended probe, expected-entropy score)."""
    engine = Flames(three_stage_amplifier())
    result = engine.diagnose(_scenario_measurements(scenario))
    rows = []
    for granularity in granularities:
        planner = BestTestPlanner(engine, scale=faultiness_scale(granularity))
        best = planner.best(result)
        rows.append(
            (granularity, best.point if best else "-", best.score if best else 0.0)
        )
    return rows


def run_envelope_validation(
    nets: Sequence[str] = ("v1", "v2", "vs"),
    samples: int = 120,
    seed: int = 9,
) -> List[Tuple[str, float, float, float, float]]:
    """Validate the fuzzy prediction envelopes against reference analyses.

    Per probe net: (net, envelope width, Monte Carlo observed range,
    worst-case corner band width, Monte Carlo coverage fraction).  The
    envelopes must cover the sampled behaviour (coverage 1.0) while not
    being wildly wider than the true worst-case band.
    """
    from repro.circuit.analysis import monte_carlo, worst_case
    from repro.core.predict import predict_nominal

    golden = three_stage_amplifier()
    predictions = predict_nominal(golden)
    sampled = monte_carlo(golden, samples=samples, seed=seed, nets=list(nets))
    corners = worst_case(golden, nets=list(nets), exhaustive_limit=3)
    rows = []
    for net in nets:
        envelope = predictions[f"V({net})"].value
        lo, hi = envelope.support
        values = sampled.voltages[net]
        covered = sum(1 for v in values if lo <= v <= hi) / len(values)
        corner_lo, corner_hi = corners.band(net)
        rows.append(
            (
                net,
                envelope.width,
                sampled.maximum(net) - sampled.minimum(net),
                corner_hi - corner_lo,
                covered,
            )
        )
    return rows


def format_ablation() -> str:
    sections = []
    sections.append(
        "conflict-threshold ablation (figure-7 scenarios)\n"
        + format_table(
            ["threshold", "faults detected /5", "total nogoods"],
            [(f"{t:.2f}", d, n) for t, d, n in run_threshold_ablation()],
        )
    )
    sections.append(
        "t-norm ablation\n"
        + format_table(
            ["t-norm", "faults detected /5", "mean top nogood degree"],
            [(n, d, f"{m:.2f}") for n, d, m in run_tnorm_ablation()],
        )
    )
    sections.append(
        "entropy term form\n"
        + format_table(
            ["form", "entropy centroid", "entropy width"],
            [(n, f"{c:.3f}", f"{w:.3f}") for n, c, w in run_entropy_form_ablation()],
        )
    )
    sections.append(
        "linguistic granularity (best-test choice, scenario 1)\n"
        + format_table(
            ["granularity", "recommended probe", "expected entropy"],
            [(g, p, f"{s:.3f}") for g, p, s in run_granularity_ablation()],
        )
    )
    sections.append(
        "prediction envelopes vs Monte Carlo vs worst-case corners\n"
        + format_table(
            ["net", "fuzzy envelope width", "MC observed range", "corner band", "MC coverage"],
            [
                (net, f"{env:.3f}", f"{mc:.3f}", f"{corner:.3f}", f"{cov:.2f}")
                for net, env, mc, corner, cov in run_envelope_validation()
            ],
        )
    )
    return "\n\n".join(sections)
