"""Degraded-input sanitisation — the paper's partial-conflict stance, applied to I/O.

FLAMES's fuzzy ATMS tolerates *partially* conflicting measurements
(Dc in [0, 1]) instead of failing hard; this module applies the same
philosophy one layer down, to measurements that are not merely
conflicting but *malformed*: NaN/∞ readings from a glitched instrument,
or magnitudes so far outside any electrical reality that propagating
them would only poison the constraint network.

Policy (:class:`SanitizePolicy`):

* ``strict`` (the default everywhere) — malformed readings are an
  error: the session raises, the server answers a structured 400.
  Byte-identical to the pre-resilience engine for well-formed inputs;
* ``repair`` — the sanitizer **drops** non-finite readings, **widens**
  merely out-of-range ones (clamping the core into ``±clamp_abs`` while
  stretching the slopes so the support still covers the original
  claim), and the diagnosis runs *degraded*: a well-formed ranked
  result flagged with the actions taken, mirroring how the engine
  reports partial conflict rather than refusing to answer.

Both the raw-tuple path (fleet jobs carry measurements as plain
5-tuples) and the rich-object path (a live
:class:`~repro.core.session.TroubleshootingSession`) are covered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "POLICIES",
    "SanitizeAction",
    "SanitizeReport",
    "sanitize_tuples",
    "sanitize_measurements",
]

#: Recognised sanitisation policies.
POLICIES = ("strict", "repair")

#: One raw fuzzy measurement: (point, m1, m2, alpha, beta).
RawMeasurement = Tuple[str, float, float, float, float]

#: Readings whose core magnitude exceeds this are *dropped* outright —
#: no analog bench produces them, widening would swallow the whole
#: constraint network.
HARD_LIMIT = 1e9

#: Readings beyond this but under :data:`HARD_LIMIT` are *widened*:
#: clamped into range with slopes stretched to keep covering the
#: original claim (a maximally vague, still-usable observation).
CLAMP_ABS = 1e6


@dataclass(frozen=True)
class SanitizeAction:
    """One repair the sanitizer performed (JSON-safe via ``to_dict``)."""

    point: str
    action: str  # "dropped" | "widened"
    reason: str

    def to_dict(self) -> Dict[str, str]:
        return {"point": self.point, "action": self.action, "reason": self.reason}


@dataclass
class SanitizeReport:
    """What survived and what was repaired."""

    actions: List[SanitizeAction] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.actions)

    @property
    def dropped(self) -> List[str]:
        return [a.point for a in self.actions if a.action == "dropped"]

    @property
    def widened(self) -> List[str]:
        return [a.point for a in self.actions if a.action == "widened"]

    def to_dict(self) -> Dict:
        return {
            "policy": "repair",
            "actions": [a.to_dict() for a in self.actions],
            "dropped": self.dropped,
            "widened": self.widened,
        }


def _finite(*values: float) -> bool:
    return all(math.isfinite(v) for v in values)


def _sanitize_raw(
    point: str, m1: float, m2: float, alpha: float, beta: float,
    clamp_abs: float, hard_limit: float,
) -> Tuple[Optional[RawMeasurement], Optional[SanitizeAction]]:
    """Sanitise one raw tuple; returns ``(tuple-or-None, action-or-None)``."""
    if not _finite(m1, m2, alpha, beta):
        return None, SanitizeAction(point, "dropped", "non-finite reading")
    if abs(m1) > hard_limit or abs(m2) > hard_limit:
        return None, SanitizeAction(
            point, "dropped", f"core magnitude beyond {hard_limit:g}"
        )
    if m1 > m2:
        return None, SanitizeAction(point, "dropped", "inverted core")
    if alpha < 0 or beta < 0:
        return None, SanitizeAction(point, "dropped", "negative slope width")
    action = None
    if abs(m1) > clamp_abs or abs(m2) > clamp_abs:
        # Clamp the core into range; stretch the slopes so the support
        # still covers the original core — vaguer, never *wrong*.
        lo, hi = m1 - alpha, m2 + beta
        m1c = min(max(m1, -clamp_abs), clamp_abs)
        m2c = min(max(m2, -clamp_abs), clamp_abs)
        alpha = max(m1c - lo, 0.0)
        beta = max(hi - m2c, 0.0)
        m1, m2 = m1c, m2c
        action = SanitizeAction(
            point, "widened", f"core clamped into ±{clamp_abs:g}"
        )
    if alpha > hard_limit or beta > hard_limit:
        alpha = min(alpha, hard_limit)
        beta = min(beta, hard_limit)
        action = SanitizeAction(
            point, "widened", f"slope widths clamped to {hard_limit:g}"
        )
    return (point, m1, m2, alpha, beta), action


def sanitize_tuples(
    measurements: Sequence[RawMeasurement],
    clamp_abs: float = CLAMP_ABS,
    hard_limit: float = HARD_LIMIT,
) -> Tuple[List[RawMeasurement], SanitizeReport]:
    """Sanitise raw ``(point, m1, m2, alpha, beta)`` tuples.

    Returns the surviving (possibly widened) tuples plus the report of
    every action taken.  Deterministic and order-preserving.
    """
    report = SanitizeReport()
    survivors: List[RawMeasurement] = []
    for point, m1, m2, alpha, beta in measurements:
        try:
            m1, m2, alpha, beta = float(m1), float(m2), float(alpha), float(beta)
        except (TypeError, ValueError):
            report.actions.append(
                SanitizeAction(str(point), "dropped", "non-numeric reading")
            )
            continue
        cleaned, action = _sanitize_raw(
            str(point), m1, m2, alpha, beta, clamp_abs, hard_limit
        )
        if action is not None:
            report.actions.append(action)
        if cleaned is not None:
            survivors.append(cleaned)
    return survivors, report


def sanitize_measurements(
    measurements: Sequence["Measurement"],
    clamp_abs: float = CLAMP_ABS,
    hard_limit: float = HARD_LIMIT,
):
    """Sanitise rich :class:`~repro.circuit.measurements.Measurement` objects.

    Non-finite values cannot exist inside a constructed
    :class:`~repro.fuzzy.FuzzyInterval` (validation rejects them), so on
    this path the sanitizer handles the out-of-range cases: absurd cores
    are dropped, merely-large ones widened.  Returns
    ``(survivors, SanitizeReport)``.
    """
    from repro.circuit.measurements import Measurement
    from repro.fuzzy import FuzzyInterval

    raw = [
        (m.point, m.value.m1, m.value.m2, m.value.alpha, m.value.beta)
        for m in measurements
    ]
    cleaned, report = sanitize_tuples(raw, clamp_abs=clamp_abs, hard_limit=hard_limit)
    survivors = [
        Measurement(point, FuzzyInterval(m1, m2, alpha, beta))
        for point, m1, m2, alpha, beta in cleaned
    ]
    return survivors, report
