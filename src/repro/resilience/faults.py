"""Deterministic fault injection — the resilience plane's chaos source.

A production diagnosis fleet fails in ways the paper never had to model:
workers crash or hang, cache entries rot, the fast kernel hits an edge
case, a bench feeds the server NaN volts.  :class:`FaultPlan` lets the
chaos suite (and ``bench_*`` / the smoke scripts) exercise *exactly*
those paths, reproducibly:

* **seeded and deterministic** — whether a fault fires at an injection
  point is a pure function of ``(seed, point, key)`` (a sha256 draw, no
  wall-clock randomness), so the same plan over the same jobs fires the
  same faults regardless of executor kind, worker count or scheduling
  order;
* **named injection points** — the code under test calls
  :func:`maybe_fire` / :func:`maybe_raise` / :func:`maybe_sleep` at the
  points listed in :data:`POINTS`; with no plan installed these are
  near-free no-ops (one module-global check);
* **plain data** — a plan is a frozen dataclass of tuples, so it
  pickles into worker processes and round-trips through JSON (the
  ``REPRO_FAULTS`` environment variable carries it into subprocess
  workers and ``repro serve`` / ``repro batch`` invocations).

The recognised injection points:

========================  ====================================================
``pool.worker_crash``     raise inside the worker's job body (→ structured
                          ``error`` result, exercises retry + quarantine)
``pool.worker_exit``      hard-kill the worker process (``os._exit``; only
                          fires inside a spawned worker process, never the
                          main process — exercises ``BrokenExecutor`` revival)
``pool.worker_hang``      sleep ``seconds`` ignoring the cooperative deadline
                          (exercises the pool's hard-kill backstop → timeout)
``pool.slow_response``    sleep ``seconds`` before answering (latency chaos)
``cache.corrupt``         flip a byte of the stored cache blob before the
                          integrity check (→ counted miss, never a crash)
``kernel.exception``      raise from inside the fast kernel's propagate stage
                          (→ circuit breaker falls back to the reference
                          engine)
``measurement.malformed`` replace one measurement with a non-finite reading
                          before parsing (→ sanitizer drop / structured 400)
``server.io``             raise inside the server's dispatch (→ structured
                          500, connection survives)
``cluster.replica_kill``  hard-kill one replica subprocess from the cluster
                          manager's supervision tick (→ ring failover routes
                          around it, the manager restarts it)
``cluster.gossip_drop``   drop one gossip delivery (→ the experience delta is
                          retried on the next round; convergence survives a
                          lossy mesh)
``stream.reading_drop``   drop one telemetry reading before ingest (→ the
                          snapshot keeps the previous value for that net; the
                          stream's final drain tick still converges)
``stream.detector_misfire`` force a spurious drift trigger (→ one wasted but
                          correct re-diagnosis; suppression counters stay
                          consistent)
========================  ====================================================
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "POINTS",
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "install_plan",
    "uninstall_plan",
    "active_plan",
    "maybe_fire",
    "maybe_raise",
    "maybe_sleep",
    "maybe_exit",
    "key_scope",
    "current_key",
    "fire_counts",
]

#: Environment variable carrying a JSON plan into worker processes.
ENV_VAR = "REPRO_FAULTS"

#: The recognised injection points (see the module docstring table).
POINTS = (
    "pool.worker_crash",
    "pool.worker_exit",
    "pool.worker_hang",
    "pool.slow_response",
    "cache.corrupt",
    "kernel.exception",
    "measurement.malformed",
    "server.io",
    "cluster.replica_kill",
    "cluster.gossip_drop",
    "stream.reading_drop",
    "stream.detector_misfire",
)


class InjectedFault(RuntimeError):
    """An exception raised on purpose by the fault plane."""

    def __init__(self, point: str, key: str):
        super().__init__(f"injected fault at {point} (key={key[:16]})")
        self.point = point
        self.key = key


@dataclass(frozen=True)
class FaultRule:
    """One armed injection point.

    ``rate`` is the per-key firing probability; the draw is the sha256
    of ``(seed, point, key)`` mapped to [0, 1), so it is identical in
    every process that evaluates it.  ``seconds`` parameterises the
    sleep-flavoured points; ``limit`` caps total firings (counted
    per-process — a convenience bound for smoke runs, not part of the
    deterministic contract).
    """

    point: str
    rate: float = 1.0
    seconds: float = 0.0
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.point not in POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; choices: {', '.join(POINTS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")

    def to_spec(self) -> Dict:
        spec: Dict = {"point": self.point, "rate": self.rate}
        if self.seconds:
            spec["seconds"] = self.seconds
        if self.limit is not None:
            spec["limit"] = self.limit
        return spec


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s — plain, picklable data."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    # ------------------------------------------------------------------
    # Deterministic decisions
    # ------------------------------------------------------------------
    def _draw(self, point: str, key: str) -> float:
        digest = hashlib.sha256(f"{self.seed}|{point}|{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def decide(self, point: str, key: str) -> Optional[FaultRule]:
        """The rule that fires at ``point`` for ``key``, if any.

        Pure — no counters, no clocks: calling it twice with the same
        arguments gives the same answer in any process.
        """
        for rule in self.rules:
            if rule.point == point and self._draw(point, key) < rule.rate:
                return rule
        return None

    # ------------------------------------------------------------------
    # Construction / serialisation
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, seed: int = 0, **rates: float) -> "FaultPlan":
        """Shorthand: ``FaultPlan.build(0, pool_worker_crash=0.1, ...)``.

        Keyword names are injection points with ``.`` spelled ``_``
        (``cache_corrupt=0.05``); values are rates.
        """
        rules = []
        for name, rate in rates.items():
            point = name.replace("_", ".", 1) if "." not in name else name
            rules.append(FaultRule(point=point, rate=float(rate)))
        return cls(seed=seed, rules=tuple(rules))

    def to_spec(self) -> Dict:
        return {"seed": self.seed, "rules": [rule.to_spec() for rule in self.rules]}

    @classmethod
    def from_spec(cls, spec: Dict) -> "FaultPlan":
        if not isinstance(spec, dict):
            raise ValueError(f"fault plan spec must be an object, got {type(spec).__name__}")
        rules: List[FaultRule] = []
        for entry in spec.get("rules", ()):
            if not isinstance(entry, dict) or "point" not in entry:
                raise ValueError(f"bad fault rule spec {entry!r}")
            rules.append(
                FaultRule(
                    point=str(entry["point"]),
                    rate=float(entry.get("rate", 1.0)),
                    seconds=float(entry.get("seconds", 0.0)),
                    limit=int(entry["limit"]) if entry.get("limit") is not None else None,
                )
            )
        return cls(seed=int(spec.get("seed", 0)), rules=tuple(rules))

    def to_json(self) -> str:
        return json.dumps(self.to_spec(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            return cls.from_spec(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from None

    def env(self) -> Dict[str, str]:
        """The environment entry that carries this plan into subprocesses."""
        return {ENV_VAR: self.to_json()}


# ----------------------------------------------------------------------
# The installed plan (module-global, per process)
# ----------------------------------------------------------------------
_lock = threading.Lock()
_active: Optional[FaultPlan] = None
_env_checked = False
_counts: Dict[str, int] = {}
_scope = threading.local()


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Arm ``plan`` process-wide (``None`` disarms).  Resets fire counts."""
    global _active, _env_checked
    with _lock:
        _active = plan
        _env_checked = True  # an explicit install overrides the environment
        _counts.clear()


def uninstall_plan() -> None:
    """Disarm and forget the environment override (test teardown)."""
    global _active, _env_checked
    with _lock:
        _active = None
        _env_checked = False
        _counts.clear()


def active_plan() -> Optional[FaultPlan]:
    """The armed plan; lazily adopted from ``REPRO_FAULTS`` once."""
    global _active, _env_checked
    if _active is None and not _env_checked:
        with _lock:
            if _active is None and not _env_checked:
                _env_checked = True
                raw = os.environ.get(ENV_VAR, "")
                if raw:
                    _active = FaultPlan.from_json(raw)
    return _active


def fire_counts() -> Dict[str, int]:
    """Per-point firing counts in this process (diagnostics/telemetry)."""
    with _lock:
        return dict(_counts)


# ----------------------------------------------------------------------
# Key scoping — stable injection keys across layers
# ----------------------------------------------------------------------
class _KeyScope:
    """Context manager binding the current deterministic injection key."""

    __slots__ = ("_key", "_previous")

    def __init__(self, key: str):
        self._key = key
        self._previous: Optional[str] = None

    def __enter__(self) -> None:
        self._previous = getattr(_scope, "key", None)
        _scope.key = self._key

    def __exit__(self, *exc_info: object) -> bool:
        _scope.key = self._previous
        return False


def key_scope(key: str) -> _KeyScope:
    """Bind ``key`` as the injection key for the enclosed work.

    ``execute_job`` binds the job's content hash around the whole
    diagnosis, so deeper layers (the pipeline's ``kernel.exception``
    point) fire deterministically per *job content* rather than per
    ephemeral trace id.
    """
    return _KeyScope(key)


def current_key(fallback: str = "") -> str:
    key = getattr(_scope, "key", None)
    return key if key is not None else fallback


# ----------------------------------------------------------------------
# Injection-point helpers (near-free when no plan is armed)
# ----------------------------------------------------------------------
def maybe_fire(point: str, key: Optional[str] = None) -> Optional[FaultRule]:
    """The rule firing at ``point`` for ``key`` (None when disarmed/quiet).

    ``key`` defaults to the :func:`key_scope`-bound key.  Honours each
    rule's ``limit`` with a per-process counter.
    """
    plan = active_plan()
    if plan is None:
        return None
    rule = plan.decide(point, key if key is not None else current_key(point))
    if rule is None:
        return None
    with _lock:
        fired = _counts.get(point, 0)
        if rule.limit is not None and fired >= rule.limit:
            return None
        _counts[point] = fired + 1
    return rule


def maybe_raise(point: str, key: Optional[str] = None) -> None:
    """Raise :class:`InjectedFault` when ``point`` fires."""
    rule = maybe_fire(point, key)
    if rule is not None:
        raise InjectedFault(point, key if key is not None else current_key(point))


def maybe_sleep(point: str, key: Optional[str] = None) -> float:
    """Sleep the firing rule's ``seconds``; returns the time slept."""
    rule = maybe_fire(point, key)
    if rule is None or rule.seconds <= 0:
        return 0.0
    import time

    time.sleep(rule.seconds)
    return rule.seconds


def maybe_exit(point: str = "pool.worker_exit", key: Optional[str] = None) -> None:
    """Hard-kill the current *worker* process when ``point`` fires.

    Refuses to fire in the main process — killing the test runner or the
    server is never the chaos we want; only spawned pool workers die.
    """
    rule = maybe_fire(point, key)
    if rule is None:
        return
    import multiprocessing

    if multiprocessing.current_process().name == "MainProcess":
        return
    os._exit(3)
