"""Self-healing supervision for the fleet engine.

The paper's engine ran one diagnosis at a time and could simply crash;
a fleet serving heavy traffic needs the failure-handling policy FLAMES
applies to *measurements* — tolerate partial conflict, keep producing
ranked answers — applied to its own *infrastructure*.  Three mechanisms,
all deterministic (counted in events, never in wall-clock time):

* **poison-job quarantine** — a job whose content keeps failing is
  eventually the job's fault, not the fleet's.  After
  ``quarantine_after`` recorded failures for one content hash the job is
  quarantined: it returns a structured ``quarantined``
  :class:`~repro.service.jobs.JobResult` immediately and never re-enters
  the retry loop (or the pool at all);
* **worker health scoring** — an exponentially-weighted success score
  per pool; sustained crashes/hangs drive the score below
  ``health_floor`` and the engine proactively evicts and restarts the
  pool (the ``concurrent.futures`` granularity of "restart the sick
  worker");
* **kernel circuit breaker** — the fast kernel must never be a
  liability: an exception (or a differential mismatch, when kernel
  verification is on) counts against the breaker, and once it trips the
  engine routes every diagnosis through the reference kernel until
  ``probe_after`` successful reference runs allow a half-open probe.
  Every trip is recorded in telemetry.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.service.telemetry import Telemetry

__all__ = ["CircuitBreaker", "EwmaHealth", "FleetSupervisor", "worker_breaker"]

#: Process-local breaker adopted by pool *worker processes*, where the
#: engine's supervisor (and its locks) cannot cross the pickle boundary.
_worker_breaker: Optional["CircuitBreaker"] = None
_worker_breaker_lock = threading.Lock()


def worker_breaker() -> "CircuitBreaker":
    """The process-local kernel breaker (created on first use)."""
    global _worker_breaker
    if _worker_breaker is None:
        with _worker_breaker_lock:
            if _worker_breaker is None:
                _worker_breaker = CircuitBreaker()
    return _worker_breaker


class EwmaHealth:
    """An exponentially-weighted success score for one supervised entity.

    The scoring rule the :class:`FleetSupervisor` applies to its worker
    pool, extracted so the cluster's :class:`~repro.cluster.replicas.
    ReplicaManager` can score each server replica with the identical
    machinery: every outcome folds in as
    ``decay * score + (1 - decay) * (1 if ok else 0)``, and a score
    below ``floor`` marks the entity for eviction.  Deterministic —
    counted in events, never in wall-clock time.
    """

    def __init__(self, decay: float = 0.7, floor: float = 0.3) -> None:
        if not 0.0 < decay < 1.0:
            raise ValueError("health decay must be in (0, 1)")
        if not 0.0 <= floor < 1.0:
            raise ValueError("health floor must be in [0, 1)")
        self.decay = decay
        self.floor = floor
        self._lock = threading.Lock()
        self._score = 1.0

    @property
    def score(self) -> float:
        with self._lock:
            return self._score

    def record(self, ok: bool) -> None:
        with self._lock:
            self._score = self.decay * self._score + (1.0 - self.decay) * (
                1.0 if ok else 0.0
            )

    def below_floor(self) -> bool:
        with self._lock:
            return self._score < self.floor

    def reset(self) -> None:
        """Restart optimism: a fresh entity starts perfectly healthy."""
        with self._lock:
            self._score = 1.0


class CircuitBreaker:
    """A deterministic closed → open → half-open breaker.

    States:

    * **closed** — the protected path (the fast kernel) is used;
      failures accumulate, ``threshold`` consecutive-window failures
      trip the breaker;
    * **open** — the protected path is bypassed; after ``probe_after``
      :meth:`record_bypass` calls the breaker half-opens;
    * **half-open** — one probe is allowed through; success closes the
      breaker, failure re-opens it.

    All transitions are counted in events — no clocks — so chaos tests
    replay identically.
    """

    def __init__(self, threshold: int = 3, probe_after: int = 50) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if probe_after < 1:
            raise ValueError("probe_after must be >= 1")
        self.threshold = threshold
        self.probe_after = probe_after
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._bypasses = 0
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May the protected path be used for the next call?"""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "half-open":
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == "half-open":
                self._state = "closed"
            self._failures = 0

    def record_failure(self) -> bool:
        """Count a failure; returns True when this call *trips* the breaker."""
        with self._lock:
            if self._state == "half-open":
                self._state = "open"
                self._bypasses = 0
                self.trips += 1
                return True
            self._failures += 1
            if self._state == "closed" and self._failures >= self.threshold:
                self._state = "open"
                self._bypasses = 0
                self.trips += 1
                return True
            return False

    def record_bypass(self) -> None:
        """Count one bypassed call; half-opens after ``probe_after`` of them."""
        with self._lock:
            if self._state != "open":
                return
            self._bypasses += 1
            if self._bypasses >= self.probe_after:
                self._state = "half-open"

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "state": self._state,
                "failures": self._failures,
                "trips": self.trips,
            }


class FleetSupervisor:
    """Health scoring, quarantine and the kernel breaker for one engine.

    Thread-safe; one instance is shared by every execution path of a
    :class:`~repro.service.pool.FleetEngine` (serial, thread pool, the
    server's ``run_job``).  Process-pool workers keep their own
    process-local breaker (state cannot cross the pickle boundary), but
    quarantine and health are scored engine-side from the results coming
    back, so they cover every executor kind.
    """

    def __init__(
        self,
        quarantine_after: int = 3,
        breaker_threshold: int = 3,
        breaker_probe_after: int = 50,
        health_floor: float = 0.3,
        health_decay: float = 0.7,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if not 0.0 < health_decay < 1.0:
            raise ValueError("health_decay must be in (0, 1)")
        if not 0.0 <= health_floor < 1.0:
            raise ValueError("health_floor must be in [0, 1)")
        self.quarantine_after = quarantine_after
        self.health_floor = health_floor
        self.health_decay = health_decay
        self.telemetry = telemetry
        self.breaker = CircuitBreaker(breaker_threshold, breaker_probe_after)
        self._lock = threading.Lock()
        self._failures: Dict[str, int] = {}
        self._quarantined: Dict[str, str] = {}  # content hash -> first error
        self._health = EwmaHealth(decay=health_decay, floor=health_floor)
        self.evictions = 0

    # ------------------------------------------------------------------
    # Poison-job quarantine
    # ------------------------------------------------------------------
    def is_quarantined(self, key: str) -> bool:
        with self._lock:
            return key in self._quarantined

    def quarantine_reason(self, key: str) -> str:
        with self._lock:
            error = self._quarantined.get(key, "")
        detail = f": {error}" if error else ""
        return (
            f"quarantined after {self.quarantine_after} failures{detail}"
        )

    def record_failure(self, key: str, error: str = "") -> bool:
        """Count one failed attempt for ``key``; True once quarantined.

        The count is cumulative across batches — a job that crashes its
        retry budget in one batch and shows up again in the next is
        exactly the poison this mechanism exists for.
        """
        with self._lock:
            if key in self._quarantined:
                return True
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
            if count < self.quarantine_after:
                return False
            self._quarantined[key] = error.splitlines()[0] if error else ""
        if self.telemetry is not None:
            self.telemetry.incr("jobs_quarantined_total")
            self.telemetry.event("job_quarantined", hash=key[:12])
        return True

    def record_job_success(self, key: str) -> None:
        """A success clears the failure streak (transient blips forgiven)."""
        with self._lock:
            self._failures.pop(key, None)

    def failure_count(self, key: str) -> int:
        with self._lock:
            return self._failures.get(key, 0)

    def quarantined_keys(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._quarantined)

    # ------------------------------------------------------------------
    # Worker health
    # ------------------------------------------------------------------
    @property
    def health(self) -> float:
        return self._health.score

    def record_worker_outcome(self, ok: bool) -> None:
        """Fold one worker outcome into the EWMA health score.

        ``ok`` means the worker *functioned* — it returned any structured
        result, including a faulty diagnosis.  Crashes, hangs and broken
        pools count against health.
        """
        self._health.record(ok)

    def should_evict(self) -> bool:
        """True when the pool's health warrants an eviction + restart."""
        return self._health.below_floor()

    def record_eviction(self) -> None:
        """The engine restarted the pool; reset the score optimistically."""
        self._health.reset()
        with self._lock:
            self.evictions += 1
        if self.telemetry is not None:
            self.telemetry.incr("worker_evictions")
            self.telemetry.event("worker_evicted")

    def snapshot(self) -> Dict:
        health = self._health.score
        with self._lock:
            quarantined = len(self._quarantined)
        return {
            "health": round(health, 4),
            "evictions": self.evictions,
            "quarantined": quarantined,
            "breaker": self.breaker.snapshot(),
        }
