"""The resilience plane: fault injection, supervision, degraded inputs.

Three cooperating pieces (see README "Resilience"):

* :mod:`repro.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan` with named injection points threaded through the
  worker pool, result cache, kernel dispatch and server I/O, so chaos
  tests exercise real failure paths reproducibly;
* :mod:`repro.resilience.supervisor` — :class:`FleetSupervisor`:
  poison-job quarantine, worker health scoring with pool eviction, and
  the :class:`CircuitBreaker` that trips the fast kernel back to the
  reference engine on exception or differential mismatch;
* :mod:`repro.resilience.sanitize` — the measurement sanitizer that
  drops or widens non-finite / out-of-range observations and lets a
  degraded-mode diagnosis run, flagged in the report — the paper's
  partial-conflict semantics applied to the system's own inputs.
"""

from repro.resilience.faults import (
    POINTS,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    install_plan,
    uninstall_plan,
)
from repro.resilience.sanitize import (
    POLICIES,
    SanitizeAction,
    SanitizeReport,
    sanitize_measurements,
    sanitize_tuples,
)
from repro.resilience.supervisor import (
    CircuitBreaker,
    EwmaHealth,
    FleetSupervisor,
    worker_breaker,
)

__all__ = [
    "POINTS",
    "POLICIES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "CircuitBreaker",
    "EwmaHealth",
    "FleetSupervisor",
    "SanitizeAction",
    "SanitizeReport",
    "active_plan",
    "install_plan",
    "uninstall_plan",
    "sanitize_measurements",
    "sanitize_tuples",
    "worker_breaker",
]
