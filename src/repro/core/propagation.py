"""Fuzzy-interval constraint propagation with assumption tracking.

This is FLAMES's kernel loop: quantities start from wide, physically
justified seeds (the supply rails), and constraint projections narrow
them; every derived value carries the union of the component assumptions
it depends on.  When a projection *coincides* with an established value,
the conflict-recognition engine classifies the coincidence (figure 4)
and reports partial/total conflicts as weighted nogoods through the
``on_conflict`` callback.

Relaxation note: circuits with feedback (a bias divider loaded by a base
current, a stage loaded by the next stage's input) are not solvable by
one-shot local propagation; iterating the projections from wide seeds
converges geometrically for the contraction-dominant networks that
well-designed bias circuits form, which is why the engine loops to
quiescence instead of doing a single pass.  A value only counts as new
information when it narrows the quantity beyond a configurable slack, so
the loop terminates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runtime.context import RunContext

from repro.circuit.constraints import Constraint, ConstraintNetwork
from repro.core.coincidence import classify
from repro.core.conflicts import RecognizedConflict, recognize
from repro.core.values import FuzzyValue
from repro.fuzzy import FuzzyInterval
from repro.kernel import CachedFuzzyOps, InternTable, ProjectionCache, resolve_kernel

__all__ = [
    "FuzzyPropagator",
    "PropagatorConfig",
    "PropagationResult",
    "PropagatorState",
]

#: Sources whose entries are evidence or database predictions, never
#: merged or narrowed — they must stay pristine for conflict attribution.
_IMMUTABLE_SOURCES = frozenset({"measurement", "premise", "prediction"})

#: Cached stand-in for a projection that raised ZeroDivisionError.
_ZERO_DIV = object()


@dataclass(frozen=True)
class PropagatorConfig:
    """Tuning knobs for the propagation loop."""

    #: Stored values per variable (measurements are always kept).
    max_values_per_variable: int = 8
    #: Values considered per input variable when projecting.
    values_per_input: int = 3
    #: Cross-product cap per (constraint, target) projection.
    max_combinations: int = 12
    #: Absolute slack under which a narrowing is not new information.
    absolute_slack: float = 1e-6
    #: Relative (to current width) slack for the same test.
    relative_slack: float = 2e-2
    #: Narrowing merges allowed per stored entry before it freezes.
    narrowing_budget: int = 50
    #: Hard cap on processed queue entries (termination backstop).
    max_steps: int = 20000
    #: ``"reference"`` (set-based, uncached, full refire per run) or
    #: ``"fast"`` (interned intervals, memoized projections/coincidences,
    #: dirty-queue incremental re-runs).  Both kernels compute the same
    #: fixpoint — the differential suite in ``tests/kernel`` enforces it.
    kernel: str = "reference"
    #: Bounded-LRU sizes for the fast kernel's caches.
    projection_cache_size: int = 16384
    op_cache_size: int = 8192
    intern_table_size: int = 4096


@dataclass
class PropagationResult:
    """Outcome of a propagation run.

    ``interrupted`` means the run's :class:`~repro.runtime.RunContext`
    expired (deadline, cancellation or step budget) before quiescence:
    every value established so far is still sound — propagation is
    monotone — but further narrowing and conflicts may have been missed.
    """

    steps: int
    conflicts: List[RecognizedConflict] = field(default_factory=list)
    quiescent: bool = True
    interrupted: bool = False


@dataclass(frozen=True)
class PropagatorState:
    """An immutable checkpoint of a propagator's established facts.

    Captures everything :meth:`FuzzyPropagator.restore` needs to resume
    computation from an earlier point: the per-variable value stores,
    the recognised conflicts, the dedup fingerprints and the dirty
    clock.  Stored entries are never mutated in place (merges replace
    list slots), so shallow container copies are sufficient and a
    checkpoint costs microseconds, not a deep traversal.  The fast
    kernel's memo caches are deliberately *not* part of the state —
    they cache pure functions, so sharing them across restores is what
    makes resumed computation cheap.  The streaming plane's incremental
    re-diagnosis (see ``repro.stream``) is built on this.
    """

    values: Dict[str, tuple]
    seen: Dict[str, FrozenSet]
    var_tick: Dict[str, int]
    fired_at: Dict[int, int]
    tick: int
    conflicts: tuple
    conflict_keys: FrozenSet


class FuzzyPropagator:
    """Work-list propagation over a circuit's constraint network."""

    def __init__(
        self,
        network: ConstraintNetwork,
        on_conflict: Optional[Callable[[RecognizedConflict], None]] = None,
        config: Optional[PropagatorConfig] = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else PropagatorConfig()
        self.on_conflict = on_conflict
        self._fast = resolve_kernel(self.config.kernel) == "fast"
        if self._fast:
            self._projections = ProjectionCache(self.config.projection_cache_size)
            self._ops = CachedFuzzyOps(self.config.op_cache_size)
            self._interns = InternTable(self.config.intern_table_size)
        else:
            self._projections = None
            self._ops = None
            self._interns = None
        self._values: Dict[str, List[FuzzyValue]] = {}
        self._watchers: Dict[str, List[Constraint]] = {}
        self._constraint_ids = {id(c): i for i, c in enumerate(network.constraints)}
        self._watched: Dict[int, tuple] = {}
        for constraint in network.constraints:
            watched = set(constraint.variable_names) | set(constraint.guard_variables)
            self._watched[id(constraint)] = tuple(watched)
            for name in watched:
                self._watchers.setdefault(name, []).append(constraint)
        self.reset()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore every variable to its physical seed."""
        self._values = {}
        self._conflicts: List[RecognizedConflict] = []
        self._conflict_keys = set()
        # Dirty-tracking for the fast kernel: a monotone change counter,
        # the tick at which each variable last changed, and the tick at
        # which each constraint last fired.  A constraint none of whose
        # watched variables changed since its last firing can only
        # recompute projections the ``_seen`` dedup would discard, so the
        # fast kernel skips it without recomputing anything.
        self._tick = 0
        self._var_tick: Dict[str, int] = {}
        self._fired_at: Dict[int, int] = {}
        # Exact projections already processed, per variable: reprocessing
        # an identical value can neither narrow entries (monotone) nor
        # reveal new conflicts (deduplicated), so it is skipped outright.
        self._seen: Dict[str, set] = {}
        for name, var in self.network.variables.items():
            if name == "V(0)":
                # The ground reference is a premise: crisp and immutable.
                value = FuzzyValue(FuzzyInterval.crisp(0.0), frozenset(), 1.0, "premise")
            else:
                value = FuzzyValue(var.seed, frozenset(), 1.0, "seed", from_seed=True)
            self._values[name] = [value]

    def checkpoint(self) -> PropagatorState:
        """Snapshot the established facts (values, conflicts, dedup state).

        Restoring the snapshot with :meth:`restore` puts the propagator
        back into exactly this state; because stored entries are
        replaced rather than mutated, the snapshot shares them and only
        copies the containers.
        """
        return PropagatorState(
            values={name: tuple(stored) for name, stored in self._values.items()},
            seen={name: frozenset(seen) for name, seen in self._seen.items()},
            var_tick=dict(self._var_tick),
            fired_at=dict(self._fired_at),
            tick=self._tick,
            conflicts=tuple(self._conflicts),
            conflict_keys=frozenset(self._conflict_keys),
        )

    def restore(self, state: PropagatorState) -> None:
        """Resume from a :meth:`checkpoint`.

        The restored run is observationally identical to a fresh
        propagator that replayed the same assertions — the fast
        kernel's memo caches survive (they are pure-function caches),
        which is why resuming is much cheaper than replaying.

        A state is only meaningful to the propagator that produced it
        (constraint firing stamps are keyed by constraint identity).
        """
        self._values = {name: list(stored) for name, stored in state.values.items()}
        self._seen = {name: set(seen) for name, seen in state.seen.items()}
        self._var_tick = dict(state.var_tick)
        self._fired_at = dict(state.fired_at)
        self._tick = state.tick
        self._conflicts = list(state.conflicts)
        self._conflict_keys = set(state.conflict_keys)

    def set_value(
        self,
        name: str,
        interval: FuzzyInterval,
        environment: FrozenSet[str] = frozenset(),
        degree: float = 1.0,
        source: str = "measurement",
    ) -> List[RecognizedConflict]:
        """Assert a value (typically a measurement) for a variable.

        Returns conflicts recognised immediately against existing values;
        run :meth:`run` afterwards to propagate the consequences.
        """
        if name not in self._values:
            raise KeyError(f"unknown variable {name!r}")
        if self._fast:
            interval = self._interns.intern(interval)
        before = len(self._conflicts)
        self._record(name, FuzzyValue(interval, environment, degree, source))
        return self._conflicts[before:]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def values(self, name: str) -> List[FuzzyValue]:
        return list(self._values[name])

    def best(self, name: str) -> Optional[FuzzyValue]:
        """The narrowest established value (measurements win ties)."""
        stored = self._values.get(name)
        if not stored:
            return None
        return min(
            stored,
            key=lambda v: (v.source not in _IMMUTABLE_SOURCES, v.width, len(v.environment)),
        )

    def best_interval(self, name: str) -> Optional[FuzzyInterval]:
        value = self.best(name)
        return value.interval if value else None

    def estimates(self) -> Dict[str, Optional[FuzzyInterval]]:
        return {name: self.best_interval(name) for name in self._values}

    @property
    def conflicts(self) -> List[RecognizedConflict]:
        return list(self._conflicts)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        constraints: Optional[Sequence[Constraint]] = None,
        ctx: Optional["RunContext"] = None,
    ) -> PropagationResult:
        """Propagate to quiescence (or the step cap, or the context's stop).

        Both kernels process the identical work list — the fixpoint is
        sensitive to firing order (combination caps, value eviction), so
        the fast kernel must not reorder it.  Instead it skips, at the
        top of :meth:`_apply`, any constraint none of whose watched
        variables changed since its last firing: such a firing can only
        reproduce projections the ``_seen`` dedup discards before they
        have any effect, so the skip is observationally a no-op.  Adding
        one measurement and re-running therefore recomputes only the
        affected cone while every result stays bit-identical.

        ``ctx`` makes the loop cooperative: it is ticked once per
        work-list pop (the same count on both kernels), and when it
        reports expiry — deadline passed, cancellation requested or
        step budget exhausted — the loop winds down immediately and the
        result is flagged ``interrupted``.  Everything established up to
        that point remains sound.
        """
        if constraints is not None:
            queue: List[Constraint] = list(constraints)
        else:
            queue = list(self.network.constraints)
        queued = {id(c) for c in queue}
        steps = 0
        start_conflicts = len(self._conflicts)
        while queue:
            if ctx is not None and ctx.tick():
                return PropagationResult(
                    steps,
                    self._conflicts[start_conflicts:],
                    quiescent=False,
                    interrupted=True,
                )
            if steps >= self.config.max_steps:
                return PropagationResult(
                    steps, self._conflicts[start_conflicts:], quiescent=False
                )
            constraint = queue.pop(0)
            queued.discard(id(constraint))
            steps += 1
            changed_vars = self._apply(constraint)
            for name in changed_vars:
                for watcher in self._watchers.get(name, ()):
                    if id(watcher) not in queued:
                        queue.append(watcher)
                        queued.add(id(watcher))
        return PropagationResult(steps, self._conflicts[start_conflicts:], quiescent=True)

    # ------------------------------------------------------------------
    def _apply(self, constraint: Constraint) -> List[str]:
        """Project a constraint onto each of its variables."""
        if self._fast:
            # Dirty check: unchanged watched variables mean unchanged
            # pools, guards and projections — every resulting value would
            # be discarded by the ``_seen`` fingerprint before recognition
            # or storage, so the whole firing is a provable no-op.
            cid = id(constraint)
            last = self._fired_at.get(cid)
            if last is not None and all(
                self._var_tick.get(v, 0) <= last for v in self._watched[cid]
            ):
                return []
            self._fired_at[cid] = self._tick
        activation_env: FrozenSet[str] = frozenset()
        if constraint.guard is not None:
            relevant = set(constraint.guard_variables) | set(constraint.variable_names)
            estimates = {name: self.best(name) for name in relevant}
            ok, activation_env = constraint.applicable_with_environment(estimates)
            if not ok:
                return []
        changed: List[str] = []
        env_base = frozenset(constraint.assumptions) | activation_env
        for target in constraint.variables:
            inputs = [v for v in constraint.variables if v.name != target.name]
            pools = [self._select(v.name) for v in inputs]
            if any(not p for p in pools):
                continue
            combos = itertools.islice(
                itertools.product(*pools), self.config.max_combinations
            )
            for combo in combos:
                projected = self._project(constraint, target, inputs, combo)
                if projected is None:
                    continue
                env = env_base.union(*(val.environment for val in combo)) if combo else env_base
                degree = min((val.degree for val in combo), default=1.0)
                tainted = any(val.from_seed for val in combo)
                value = FuzzyValue(
                    projected, env, degree, constraint.name, from_seed=tainted
                )
                if self._record(target.name, value):
                    if target.name not in changed:
                        changed.append(target.name)
        return changed

    def _project(self, constraint, target, inputs, combo) -> Optional[FuzzyInterval]:
        """One projection; the fast kernel memoizes it on the exact inputs.

        A projection is a pure function of (constraint, target, input
        intervals), so the cache key ignores environments and degrees —
        those are recombined by the caller.  ``ZeroDivisionError``
        outcomes are cached as failures.
        """
        if self._fast:
            key = (
                self._constraint_ids[id(constraint)],
                target.name,
                tuple(val.interval.as_tuple() for val in combo),
            )
            cached = self._projections.lookup(key)
            if cached is not ProjectionCache.MISS:
                return None if cached is _ZERO_DIV or cached is None else cached
            try:
                projected = constraint.project(
                    target, {v.name: val.interval for v, val in zip(inputs, combo)}
                )
            except ZeroDivisionError:
                self._projections.store(key, _ZERO_DIV)
                return None
            if projected is not None:
                projected = self._interns.intern(projected)
            self._projections.store(key, projected)
            return projected
        try:
            return constraint.project(
                target, {v.name: val.interval for v, val in zip(inputs, combo)}
            )
        except ZeroDivisionError:
            return None

    def _select(self, name: str) -> List[FuzzyValue]:
        """Input values for a projection: measurements first, then narrow."""
        stored = sorted(
            self._values[name],
            key=lambda v: (v.source not in _IMMUTABLE_SOURCES, v.width, len(v.environment)),
        )
        return stored[: self.config.values_per_input]

    # ------------------------------------------------------------------
    def _record(self, name: str, new: FuzzyValue) -> bool:
        """Store a value; report coincidence conflicts; return "changed".

        Stored entries are *monotonically narrowed*: a new value merges by
        intersection into the first entry whose environment is comparable
        (subset or superset) to its own, and the merged entry's
        environment is the union of the two — the set of assumptions the
        accumulated narrowing depends on.  Measurements and premises are
        immutable (they are evidence, not inferences).  This
        intersection-only discipline is what keeps propagation sound in
        circuits with feedback loops: every entry always contains the
        true value whenever its supporting assumptions hold.
        """
        fingerprint = (new.interval.as_tuple(), new.environment, round(new.degree, 6))
        seen = self._seen.setdefault(name, set())
        if new.source not in _IMMUTABLE_SOURCES:
            if fingerprint in seen:
                return False
            seen.add(fingerprint)
        stored = self._values[name]
        # Redundancy first: a value subsumed by an existing one cannot
        # reveal a conflict stronger than the ones its subsumer already
        # did, and skipping it avoids the (comparatively expensive)
        # coincidence classification on the quiescent tail.  Evidence
        # values are exempt — they must always be checked and stored.
        slack = self.config.absolute_slack + self.config.relative_slack * new.width
        if new.source not in _IMMUTABLE_SOURCES and any(
            e.subsumes(new, slack) for e in stored
        ):
            return False
        # Conflict recognition against every established value whose width
        # reflects model implication (seed-descended values carry
        # ignorance, not evidence).
        for existing in stored:
            if existing.from_seed or new.from_seed:
                continue
            if existing.is_seed or new.is_seed:
                continue
            if self._fast:
                conflict = recognize(
                    name, new, existing, classify_fn=self._classify_cached
                )
            else:
                conflict = recognize(name, new, existing)
            if conflict is not None:
                key = (
                    name,
                    conflict.environment,
                    round(conflict.degree, 2),
                    conflict.direction,
                )
                if key not in self._conflict_keys:
                    self._conflict_keys.add(key)
                    self._conflicts.append(conflict)
                    if self.on_conflict is not None:
                        self.on_conflict(conflict)
        if new.source in _IMMUTABLE_SOURCES:
            stored.append(new)
            self._touch(name)
            return True
        # Merge into an entry with the *same* environment.  Equal-env
        # merging is what lets loop relaxation converge; merging across
        # different environments would grow the narrow value's env to the
        # union and thereby destroy precisely-attributed evidence (a
        # measured-backed {R2} value swallowed by an everything-env
        # entry can no longer implicate R2 alone).
        for i, existing in enumerate(stored):
            if existing.source in _IMMUTABLE_SOURCES:
                continue
            if existing.environment != new.environment:
                continue
            if existing.revision >= self.config.narrowing_budget:
                return False  # frozen: relaxation budget exhausted
            if self._fast:
                hull = self._ops.intersection_hull(existing.interval, new.interval)
            else:
                hull = existing.interval.intersection_hull(new.interval)
            if hull is None:
                continue  # frank conflict (already logged); keep both views
            merged = FuzzyValue(
                hull,
                new.environment,
                min(existing.degree, new.degree),
                new.source or existing.source,
                existing.revision + 1,
                # Intersection with an untainted value bounds the result by
                # model implication, clearing the taint.
                from_seed=existing.from_seed and new.from_seed,
            )
            if existing.subsumes(merged, slack):
                return False
            stored[i] = merged
            self._touch(name)
            return True
        if self._append(name, new):
            self._touch(name)
            return True
        return False

    def _touch(self, name: str) -> None:
        """Stamp a variable as changed (advances the dirty clock)."""
        self._tick += 1
        self._var_tick[name] = self._tick

    def _classify_cached(self, a: FuzzyInterval, b: FuzzyInterval):
        """Coincidence classification through the fast kernel's memo."""
        return self._ops.call(classify, a, b)

    def kernel_stats(self) -> Dict[str, int]:
        """Cache effectiveness counters (all zero on the reference kernel)."""
        if not self._fast:
            return {}
        stats = {f"projection_{k}": v for k, v in self._projections.stats().items()}
        stats.update({f"ops_{k}": v for k, v in self._ops.stats().items()})
        stats["interned_intervals"] = len(self._interns)
        return stats

    def _append(self, name: str, new: FuzzyValue) -> bool:
        """Add a new entry, honouring the size cap.

        When the variable is full, the new entry must beat the widest
        evictable entry to get in; otherwise it is dropped *without*
        counting as a change — evict-and-readd cycles would keep the
        work list busy forever.
        """
        stored = self._values[name]
        cap = self.config.max_values_per_variable
        if len(stored) < cap or new.source in _IMMUTABLE_SOURCES:
            stored.append(new)
            return True
        evictable = [
            (i, v)
            for i, v in enumerate(stored)
            if v.source not in _IMMUTABLE_SOURCES
        ]
        if not evictable:
            return False
        worst_index, worst = max(evictable, key=lambda iv: (iv[1].width, len(iv[1].environment)))
        if new.width < worst.width:
            stored[worst_index] = new
            return True
        return False
