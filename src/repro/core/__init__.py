"""The FLAMES engine: the paper's primary contribution.

* :mod:`repro.core.values`      — fuzzy values with assumption environments.
* :mod:`repro.core.coincidence` — figure-4 coincidence classification.
* :mod:`repro.core.conflicts`   — the conflict-recognition engine.
* :mod:`repro.core.propagation` — fuzzy-interval constraint propagation with
  assumption tracking (the kernel).
* :mod:`repro.core.diagnosis`   — the ``Flames`` facade tying the fuzzy ATMS,
  the model database and the propagation together.
* :mod:`repro.core.knowledge`   — fuzzy qualitative rules and fault modes.
* :mod:`repro.core.learning`    — symptom-failure rule induction.
* :mod:`repro.core.strategy`    — fuzzy-entropy best-test selection.
"""

from repro.core.values import FuzzyValue
from repro.core.coincidence import CoincidenceKind, classify, resolve
from repro.core.conflicts import RecognizedConflict, recognize
from repro.core.propagation import FuzzyPropagator, PropagationResult
from repro.core.diagnosis import Flames, FlamesConfig, DiagnosisResult, Diagnosis
from repro.core.knowledge import FaultMode, KnowledgeBase, QualitativeRule, common_fault_modes
from repro.core.learning import Episode, ExperienceBase, SymptomSignature
from repro.core.strategy import BestTestPlanner, TestRecommendation
from repro.core.session import TroubleshootingSession
from repro.core.dynamic import DynamicDiagnoser, DynamicDiagnosisResult

__all__ = [
    "FuzzyValue",
    "CoincidenceKind",
    "classify",
    "resolve",
    "RecognizedConflict",
    "recognize",
    "FuzzyPropagator",
    "PropagationResult",
    "Flames",
    "FlamesConfig",
    "DiagnosisResult",
    "Diagnosis",
    "FaultMode",
    "KnowledgeBase",
    "QualitativeRule",
    "common_fault_modes",
    "Episode",
    "ExperienceBase",
    "SymptomSignature",
    "BestTestPlanner",
    "TestRecommendation",
    "TroubleshootingSession",
    "DynamicDiagnoser",
    "DynamicDiagnosisResult",
]
