"""The FLAMES engine facade.

``Flames`` ties the pieces together the way the paper's figure 3 draws
them: the model database (a circuit's constraint network), the fuzzy
ATMS kernel (weighted nogoods over component-correctness assumptions),
and the conflict-recognition engine (fuzzy propagation + Dc).  One
``diagnose`` call takes a set of measurements and returns the ranked
weighted nogoods, the component suspicions and the minimal candidate
sets, plus the per-probe consistency table that figure 7 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.atms import FuzzyATMS, WeightedNogood, minimal_diagnoses, suspicion_scores
from repro.atms.candidates import Diagnosis
from repro.atms.nodes import Node
from repro.circuit.constraints import ConstraintNetwork
from repro.circuit.measurements import Measurement
from repro.circuit.netlist import Circuit
from repro.core.conflicts import RecognizedConflict
from repro.core.predict import predict_nominal
from repro.core.propagation import FuzzyPropagator, PropagationResult, PropagatorConfig
from repro.fuzzy import Consistency, FuzzyInterval, consistency
from repro.fuzzy.logic import TNorm, t_norm_min
from repro.kernel import FastFuzzyATMS, resolve_kernel

__all__ = ["Flames", "FlamesConfig", "DiagnosisResult", "Diagnosis"]


@dataclass(frozen=True)
class FlamesConfig:
    """Engine configuration.

    ``conflict_threshold`` filters out tolerance noise: coincidences whose
    conflict degree falls below it are not recorded as nogoods.
    ``max_candidate_size`` bounds the simultaneous-fault cardinality
    considered by the hitting-set step (the paper entertains multiple
    faults but notes the space "grows exponentially").
    ``kernel`` selects the implementation substrate: ``"reference"`` is
    the seed's set-based, uncached semantics; ``"fast"`` runs the same
    algorithms on interned bitmask environments with memoized fuzzy
    arithmetic and incremental propagation (identical results, verified
    by the differential suite in ``tests/kernel``).
    """

    assumable_nodes: bool = False
    conflict_threshold: float = 0.05
    max_candidate_size: int = 3
    t_norm: TNorm = t_norm_min
    hard_threshold: float = 1.0
    kernel: str = "reference"
    propagator: PropagatorConfig = field(default_factory=PropagatorConfig)

    def __post_init__(self) -> None:
        resolve_kernel(self.kernel)

    def effective_propagator(self) -> PropagatorConfig:
        """The propagator config with the engine-level kernel applied."""
        if self.propagator.kernel == self.kernel:
            return self.propagator
        return replace(self.propagator, kernel=self.kernel)


@dataclass
class DiagnosisResult:
    """Everything one diagnosis run produced."""

    measurements: List[Measurement]
    predictions: Dict[str, FuzzyInterval]
    prediction_support: Dict[str, FrozenSet[str]]
    consistencies: Dict[str, Consistency]
    nogoods: List[WeightedNogood]
    diagnoses: List[Diagnosis]
    suspicions: Dict[str, float]
    conflicts: List[RecognizedConflict] = field(default_factory=list)
    propagation: Optional[PropagationResult] = None

    @property
    def is_consistent(self) -> bool:
        """No conflict above the engine threshold: the unit looks healthy."""
        return not self.nogoods

    def initial_suspects(self, point: str) -> FrozenSet[str]:
        """Components supporting the prediction at a probe point.

        For a single-path circuit this is "all the modules" upstream of
        the probe — the paper's starting candidate set.
        """
        return self.prediction_support.get(point, frozenset())

    def ranked_components(self) -> List[tuple]:
        """(component, suspicion) pairs, most suspect first."""
        return sorted(self.suspicions.items(), key=lambda kv: (-kv[1], kv[0]))

    def consistency_row(self, points: Sequence[str]) -> Dict[str, float]:
        """Signed Dc per probe point — one row of the figure-7 table."""
        return {
            p: self.consistencies[p].signed for p in points if p in self.consistencies
        }


class Flames:
    """A fuzzy-logic ATMS and model-based expert system for analog diagnosis."""

    def __init__(self, circuit: Circuit, config: Optional[FlamesConfig] = None) -> None:
        self.circuit = circuit
        self.config = config if config is not None else FlamesConfig()
        self.network = ConstraintNetwork(
            circuit, self.config.assumable_nodes, nominal_modes=self._design_modes(circuit)
        )
        self._nominal: Optional[Dict[str, object]] = None

    @staticmethod
    def _design_modes(circuit: Circuit) -> Dict[str, str]:
        """Designed operating region of each nonlinear device.

        Obtained from a golden DC solve of the nominal circuit — the
        model database records how the unit is *meant* to operate (the
        paper: "the chosen values of the components ensure the linear
        region of transistors").  Falls back to the conducting regions
        when the nominal circuit cannot be solved.
        """
        from repro.circuit.simulate import DCSolver, SimulationError

        try:
            return DCSolver(circuit).solve().device_states
        except (SimulationError, ValueError):
            return {}

    # ------------------------------------------------------------------
    # Predictions (the model database's nominal values with tolerances)
    # ------------------------------------------------------------------
    def predictions(self) -> Dict[str, FuzzyInterval]:
        """Nominal predicted value per variable (tolerances propagated)."""
        self._ensure_nominal()
        return {name: p.value for name, p in self._nominal.items()}

    def prediction_support(self) -> Dict[str, FrozenSet[str]]:
        """Components supporting each nominal prediction."""
        self._ensure_nominal()
        return {name: p.support for name, p in self._nominal.items()}

    def _ensure_nominal(self) -> None:
        if self._nominal is None:
            self._nominal = predict_nominal(self.circuit)

    # ------------------------------------------------------------------
    # Diagnosis
    # ------------------------------------------------------------------
    def diagnose(self, measurements: Sequence[Measurement]) -> DiagnosisResult:
        """Run the full conflict-recognition + candidate-generation cycle."""
        atms_cls = FastFuzzyATMS if self.config.kernel == "fast" else FuzzyATMS
        atms = atms_cls(
            t_norm=self.config.t_norm, hard_threshold=self.config.hard_threshold
        )
        assumption_nodes: Dict[str, Node] = {}

        def node_for(name: str) -> Node:
            if name not in assumption_nodes:
                assumption_nodes[name] = atms.create_assumption(f"ok({name})", name)
            return assumption_nodes[name]

        data_conflicts: List[RecognizedConflict] = []

        def on_conflict(conflict: RecognizedConflict) -> None:
            if conflict.degree < self.config.conflict_threshold:
                return
            if not conflict.environment:
                data_conflicts.append(conflict)
                return
            atms.declare_soft_nogood(
                f"{conflict.variable}",
                [node_for(n) for n in sorted(conflict.environment)],
                conflict.degree,
            )

        propagator = FuzzyPropagator(
            self.network, on_conflict=on_conflict, config=self.config.effective_propagator()
        )
        # Database predictions first (so mode guards and coincidence checks
        # see them), then the observations.
        self._ensure_nominal()
        for name, prediction in self._nominal.items():
            if name in self.network.variables:
                propagator.set_value(
                    name, prediction.value, prediction.support, source="prediction"
                )
        for m in measurements:
            if m.point not in self.network.variables:
                raise KeyError(f"no variable {m.point!r} in the model")
            propagator.set_value(m.point, m.value)
        outcome = propagator.run()

        predictions = self.predictions()
        support = self.prediction_support()
        consistencies = {
            m.point: consistency(m.value, predictions[m.point])
            for m in measurements
            if m.point in predictions
        }
        nogoods = atms.weighted_nogoods(self.config.conflict_threshold)
        diagnoses = minimal_diagnoses(
            nogoods,
            threshold=self.config.conflict_threshold,
            max_size=self.config.max_candidate_size,
        )
        suspicions = {
            a.datum: s for a, s in suspicion_scores(nogoods).items()
        }
        return DiagnosisResult(
            measurements=list(measurements),
            predictions=predictions,
            prediction_support=support,
            consistencies=consistencies,
            nogoods=nogoods,
            diagnoses=diagnoses,
            suspicions=suspicions,
            conflicts=propagator.conflicts + data_conflicts,
            propagation=outcome,
        )
