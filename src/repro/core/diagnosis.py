"""The FLAMES engine facade.

``Flames`` ties the pieces together the way the paper's figure 3 draws
them: the model database (a circuit's constraint network), the fuzzy
ATMS kernel (weighted nogoods over component-correctness assumptions),
and the conflict-recognition engine (fuzzy propagation + Dc).  One
``diagnose`` call takes a set of measurements and returns the ranked
weighted nogoods, the component suspicions and the minimal candidate
sets, plus the per-probe consistency table that figure 7 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.atms import WeightedNogood
from repro.atms.candidates import Diagnosis
from repro.circuit.constraints import ConstraintNetwork
from repro.circuit.measurements import Measurement
from repro.circuit.netlist import Circuit
from repro.core.conflicts import RecognizedConflict
from repro.core.predict import Prediction, predict_nominal
from repro.core.propagation import (
    FuzzyPropagator,
    PropagationResult,
    PropagatorConfig,
)
from repro.fuzzy import Consistency, FuzzyInterval
from repro.fuzzy.logic import TNorm, t_norm_min
from repro.kernel import resolve_kernel

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runtime.context import RunContext

__all__ = ["Flames", "FlamesConfig", "DiagnosisResult", "Diagnosis"]


@dataclass(frozen=True)
class FlamesConfig:
    """Engine configuration.

    ``conflict_threshold`` filters out tolerance noise: coincidences whose
    conflict degree falls below it are not recorded as nogoods.
    ``max_candidate_size`` bounds the simultaneous-fault cardinality
    considered by the hitting-set step (the paper entertains multiple
    faults but notes the space "grows exponentially").
    ``kernel`` selects the implementation substrate: ``"reference"`` is
    the seed's set-based, uncached semantics; ``"fast"`` runs the same
    algorithms on interned bitmask environments with memoized fuzzy
    arithmetic and incremental propagation (identical results, verified
    by the differential suite in ``tests/kernel``).
    """

    assumable_nodes: bool = False
    conflict_threshold: float = 0.05
    max_candidate_size: int = 3
    t_norm: TNorm = t_norm_min
    hard_threshold: float = 1.0
    kernel: str = "reference"
    propagator: PropagatorConfig = field(default_factory=PropagatorConfig)

    def __post_init__(self) -> None:
        resolve_kernel(self.kernel)

    def effective_propagator(self) -> PropagatorConfig:
        """The propagator config with the engine-level kernel applied."""
        if self.propagator.kernel == self.kernel:
            return self.propagator
        return replace(self.propagator, kernel=self.kernel)


@dataclass
class DiagnosisResult:
    """Everything one diagnosis run produced."""

    measurements: List[Measurement]
    predictions: Dict[str, FuzzyInterval]
    prediction_support: Dict[str, FrozenSet[str]]
    consistencies: Dict[str, Consistency]
    nogoods: List[WeightedNogood]
    diagnoses: List[Diagnosis]
    suspicions: Dict[str, float]
    conflicts: List[RecognizedConflict] = field(default_factory=list)
    propagation: Optional[PropagationResult] = None
    interrupted: bool = False
    trace: Optional[Dict[str, object]] = None

    @property
    def is_consistent(self) -> bool:
        """No conflict above the engine threshold: the unit looks healthy."""
        return not self.nogoods

    def initial_suspects(self, point: str) -> FrozenSet[str]:
        """Components supporting the prediction at a probe point.

        For a single-path circuit this is "all the modules" upstream of
        the probe — the paper's starting candidate set.
        """
        return self.prediction_support.get(point, frozenset())

    def ranked_components(self) -> List[Tuple[str, float]]:
        """(component, suspicion) pairs, most suspect first."""
        return sorted(self.suspicions.items(), key=lambda kv: (-kv[1], kv[0]))

    def consistency_row(self, points: Sequence[str]) -> Dict[str, float]:
        """Signed Dc per probe point — one row of the figure-7 table."""
        return {
            p: self.consistencies[p].signed for p in points if p in self.consistencies
        }


class Flames:
    """A fuzzy-logic ATMS and model-based expert system for analog diagnosis."""

    def __init__(self, circuit: Circuit, config: Optional[FlamesConfig] = None) -> None:
        self.circuit = circuit
        self.config = config if config is not None else FlamesConfig()
        self.network = ConstraintNetwork(
            circuit, self.config.assumable_nodes, nominal_modes=self._design_modes(circuit)
        )
        self._nominal: Optional[Dict[str, Prediction]] = None

    @staticmethod
    def _design_modes(circuit: Circuit) -> Dict[str, str]:
        """Designed operating region of each nonlinear device.

        Obtained from a golden DC solve of the nominal circuit — the
        model database records how the unit is *meant* to operate (the
        paper: "the chosen values of the components ensure the linear
        region of transistors").  Falls back to the conducting regions
        when the nominal circuit cannot be solved.
        """
        from repro.circuit.simulate import DCSolver, SimulationError

        try:
            return DCSolver(circuit).solve().device_states
        except (SimulationError, ValueError):
            return {}

    # ------------------------------------------------------------------
    # Predictions (the model database's nominal values with tolerances)
    # ------------------------------------------------------------------
    def predictions(self) -> Dict[str, FuzzyInterval]:
        """Nominal predicted value per variable (tolerances propagated)."""
        self._ensure_nominal()
        assert self._nominal is not None
        return {name: p.value for name, p in self._nominal.items()}

    def prediction_support(self) -> Dict[str, FrozenSet[str]]:
        """Components supporting each nominal prediction."""
        self._ensure_nominal()
        assert self._nominal is not None
        return {name: p.support for name, p in self._nominal.items()}

    def _ensure_nominal(self) -> None:
        if self._nominal is None:
            self._nominal = predict_nominal(self.circuit)

    # ------------------------------------------------------------------
    # Diagnosis
    # ------------------------------------------------------------------
    def diagnose(
        self,
        measurements: Sequence[Measurement],
        ctx: Optional["RunContext"] = None,
        propagator: Optional["FuzzyPropagator"] = None,
    ) -> DiagnosisResult:
        """Run the full conflict-recognition + candidate-generation cycle.

        The cycle itself lives in :class:`repro.runtime.pipeline.
        DiagnosisPipeline`, decomposed into named stages.  Passing a
        ``ctx`` bounds the run (deadline / cancellation / step budget)
        and, when its tracing flag is on, collects a span tree on the
        returned result.  Without a context the call is unbounded and
        byte-identical to the pre-staged engine.

        ``propagator`` (from :meth:`make_propagator`) runs the fixpoint
        on a warm, reusable propagator: results are observationally
        identical to a fresh run, but the fast kernel's memo caches
        survive between calls — the streaming plane's incremental path.
        """
        from repro.runtime.pipeline import DiagnosisPipeline

        return DiagnosisPipeline(self).run(measurements, ctx=ctx, propagator=propagator)

    def make_propagator(self) -> "FuzzyPropagator":
        """A reusable propagator over this engine's network.

        Pass it back into :meth:`diagnose` on every call to keep the
        kernel warm across a stream of re-diagnoses (see README
        "Streaming mode"); each run resets its values but keeps the
        interned intervals and memoized projections.
        """
        return FuzzyPropagator(self.network, config=self.config.effective_propagator())
