"""Coincidence classification and resolution (paper figure 4 / §6.1.1).

A *coincidence* is the discovery of a value for a quantity that already
has one.  Figure 4 distinguishes:

* **case a** — one value splits (refines) the other: no conflict, the
  narrower value wins;
* **case b** — conflict (disjoint) or partial conflict (overlap without
  inclusion): a nogood with degree ``1 - Dc``;
* **case c** — corroboration (equal values): no new information, and —
  as the paper stresses — *not* an exoneration of the components
  involved.

:func:`resolve` combines two coincident values into the narrowed result
plus the conflict degree to record, which is how the propagation engine
consumes this module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.fuzzy import FuzzyInterval, consistency, possibility
from repro.fuzzy.compare import Consistency

__all__ = ["CoincidenceKind", "Coincidence", "classify", "resolve"]

_EPS = 1e-9


class CoincidenceKind(enum.Enum):
    CORROBORATION = "corroboration"  # case c: A == B
    A_SPLITS_B = "a_splits_b"  # case a: A refines B
    B_SPLITS_A = "b_splits_a"  # case a: B refines A
    PARTIAL_CONFLICT = "partial_conflict"  # case b, overlapping
    CONFLICT = "conflict"  # case b, disjoint


@dataclass(frozen=True)
class Coincidence:
    """Classification of a coincidence between two fuzzy values.

    ``worst`` is the least favourable of the two directional consistency
    degrees — the paper's "particular attention should be given to the
    path which led to the worst one".  ``conflict_degree`` is the degree
    of the nogood the conflict-recognition engine must record: the Dc
    complement (inclusion either way means no conflict), additionally
    capped by the possibility complement — when the two values' *cores*
    intersect, their most-plausible readings agree outright, and leaking
    tolerance slopes past a one-sided bound is not evidence of a fault
    (the possibilistic reading the paper's §6.1.2 justification invokes).
    """

    kind: CoincidenceKind
    a_in_b: Consistency
    b_in_a: Consistency
    worst: Consistency
    overlap_possibility: float = 0.0

    @property
    def conflict_degree(self) -> float:
        dc_complement = 1.0 - max(self.a_in_b.degree, self.b_in_a.degree)
        return min(dc_complement, 1.0 - self.overlap_possibility)

    @property
    def is_conflicting(self) -> bool:
        return self.conflict_degree > _EPS

    @property
    def direction(self) -> int:
        """Deviation direction of ``a`` relative to ``b``."""
        return self.a_in_b.direction


def classify(a: FuzzyInterval, b: FuzzyInterval) -> Coincidence:
    """Classify the coincidence of two fuzzy intervals per figure 4."""
    a_in_b = consistency(a, b)
    b_in_a = consistency(b, a)
    overlap = possibility(a, b)
    worst = a_in_b if a_in_b.degree <= b_in_a.degree else b_in_a
    if a_in_b.degree >= 1.0 - _EPS and b_in_a.degree >= 1.0 - _EPS:
        kind = CoincidenceKind.CORROBORATION
    elif a_in_b.degree >= 1.0 - _EPS:
        kind = CoincidenceKind.A_SPLITS_B  # a included in b: a refines (splits) b
    elif b_in_a.degree >= 1.0 - _EPS:
        kind = CoincidenceKind.B_SPLITS_A
    elif max(a_in_b.degree, b_in_a.degree) <= _EPS:
        kind = CoincidenceKind.CONFLICT
    else:
        kind = CoincidenceKind.PARTIAL_CONFLICT
    return Coincidence(kind, a_in_b, b_in_a, worst, overlap)


def resolve(
    a: FuzzyInterval, b: FuzzyInterval
) -> Tuple[Optional[FuzzyInterval], float]:
    """Combined value and conflict degree for a coincidence.

    Returns ``(narrowed, conflict_degree)``: the narrowed value is the
    trapezoidal hull of the pointwise minimum when the supports overlap
    (both constraints must hold), or ``None`` for a frank conflict where
    no common value survives.
    """
    coin = classify(a, b)
    if coin.kind is CoincidenceKind.CONFLICT:
        return None, 1.0
    return a.intersection_hull(b), coin.conflict_degree
