"""The knowledge-base unit: fuzzy qualitative rules and fault models (§5, §7).

Two kinds of expert knowledge refine the ATMS candidates:

* **Common fault modes** — open / short / high / low for resistors and
  the analogous modes for the other component kinds, each defined as a
  fuzzy set over the *deviation ratio* (actual / nominal parameter
  value).  Figure 7's decisive step ("considering the fault modes of the
  diode drives us to strongly suspect the resistance r2 which has to be
  very low") is fault-mode matching: hypothesise a candidate's mode,
  predict the circuit's behaviour under it, and score the match against
  the measurements with Dc.
* **Fuzzy qualitative rules** — expert rules with certainty degrees
  ("if Vbe(T) >= 0.4 then T should be ON"), applied to measured or
  derived values to adjust component estimations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.circuit.faults import Fault, FaultKind, apply_fault
from repro.circuit.measurements import Measurement
from repro.circuit.netlist import Circuit, Component
from repro.circuit.simulate import DCSolver, SimulationError
from repro.fuzzy import FuzzyInterval, consistency

__all__ = [
    "FaultMode",
    "QualitativeRule",
    "KnowledgeBase",
    "ModeMatch",
    "common_fault_modes",
    "threshold_rule",
]


@dataclass(frozen=True)
class FaultMode:
    """A named common fault mode of a component kind.

    ``deviation`` is the fuzzy set of plausible actual/nominal parameter
    ratios under this mode (e.g. ``short``: ratio near 0; ``high``:
    ratio roughly in [1.15, 2]).  ``faults`` builds the concrete defects
    to hypothesise when simulating the mode for a given component — soft
    modes cover a band of deviations, so several representatives are
    simulated and the best match wins.
    """

    kind: str  # component kind the mode applies to
    name: str
    deviation: FuzzyInterval
    faults: Callable[[Component], List[Fault]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}:{self.name}"


def common_fault_modes() -> Dict[str, List[FaultMode]]:
    """The built-in fault-mode catalogue, keyed by component kind.

    Resistors get the paper's four modes (open, short, high, low);
    diodes open/short; BJTs open-junction and parameter drifts;
    amplifiers dead and gain drift.
    """

    def param(parameter: str, *ratios: float) -> Callable[[Component], List[Fault]]:
        def build(component: Component) -> List[Fault]:
            return [
                Fault(
                    FaultKind.PARAM,
                    component.name,
                    parameter,
                    getattr(component, parameter) * ratio,
                )
                for ratio in ratios
            ]

        return build

    def hard(kind: FaultKind) -> Callable[[Component], List[Fault]]:
        return lambda component: [Fault(kind, component.name)]

    return {
        "Resistor": [
            FaultMode(
                "Resistor", "open", FuzzyInterval(1e4, 1e12, 5e3, 0.0),
                hard(FaultKind.OPEN),
            ),
            FaultMode(
                "Resistor", "short", FuzzyInterval(0.0, 1e-4, 0.0, 5e-4),
                hard(FaultKind.SHORT),
            ),
            FaultMode(
                "Resistor", "high", FuzzyInterval(1.1, 2.0, 0.05, 1.0),
                param("resistance", 1.1, 1.25, 1.5, 2.0),
            ),
            FaultMode(
                "Resistor", "low", FuzzyInterval(0.5, 0.9, 0.3, 0.05),
                param("resistance", 0.9, 0.75, 0.6, 0.4),
            ),
        ],
        "Diode": [
            FaultMode(
                "Diode", "open", FuzzyInterval(1e4, 1e12, 5e3, 0.0),
                hard(FaultKind.OPEN),
            ),
            FaultMode(
                "Diode", "short", FuzzyInterval(0.0, 1e-4, 0.0, 5e-4),
                hard(FaultKind.SHORT),
            ),
        ],
        "BJT": [
            FaultMode(
                "BJT", "junction-open", FuzzyInterval(1e4, 1e12, 5e3, 0.0),
                hard(FaultKind.OPEN),
            ),
            FaultMode(
                "BJT", "beta-low", FuzzyInterval(0.1, 0.7, 0.05, 0.15),
                param("beta", 0.6, 0.4, 0.15),
            ),
            FaultMode(
                "BJT", "vbe-high", FuzzyInterval(1.05, 1.4, 0.05, 0.2),
                param("vbe_on", 1.1, 1.2, 1.35),
            ),
        ],
        "Amplifier": [
            FaultMode(
                "Amplifier", "dead", FuzzyInterval(0.0, 1e-3, 0.0, 1e-2),
                param("gain", 0.0),
            ),
            FaultMode(
                "Amplifier", "gain-low", FuzzyInterval(0.4, 0.9, 0.2, 0.1),
                param("gain", 0.85, 0.6, 0.4),
            ),
            FaultMode(
                "Amplifier", "gain-high", FuzzyInterval(1.1, 2.0, 0.05, 0.5),
                param("gain", 1.15, 1.4, 1.8),
            ),
        ],
    }


@dataclass(frozen=True)
class ModeMatch:
    """How well a hypothesised fault mode explains the measurements."""

    component: str
    mode: str
    degree: float
    per_point: Dict[str, float] = field(default_factory=dict, hash=False, compare=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.component}:{self.mode}@{self.degree:.2f}"


@dataclass(frozen=True)
class QualitativeRule:
    """A fuzzy expert rule over measured/derived values.

    ``condition`` maps probe values (name -> FuzzyInterval) to a firing
    degree in [0, 1] (0 = not applicable); ``conclusion`` names the
    implicated component, and ``certainty`` is the rule's own confidence.
    The effective weight of a firing is ``min(firing, certainty)``.
    """

    name: str
    condition: Callable[[Dict[str, FuzzyInterval]], float]
    conclusion: str
    certainty: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.certainty <= 1.0:
            raise ValueError(f"rule {self.name}: certainty outside (0, 1]")

    def fire(self, values: Dict[str, FuzzyInterval]) -> float:
        degree = self.condition(values)
        if not 0.0 <= degree <= 1.0:
            raise ValueError(f"rule {self.name}: firing degree {degree} outside [0,1]")
        return min(degree, self.certainty)


def threshold_rule(
    name: str,
    point: str,
    threshold: float,
    conclusion: str,
    above: bool = True,
    certainty: float = 1.0,
    softness: float = 0.1,
) -> QualitativeRule:
    """A fuzzy threshold rule — the paper's "If Vbe(T) >= 0.4 then ..."

    Fires to the degree the observed value at ``point`` is possibly
    above (or below) ``about(threshold)``; ``softness`` is the relative
    spread of the fuzzy threshold.  Built on the linguistic hedges so
    the rule reads the way the expert states it.
    """
    from repro.fuzzy.compare import possibility
    from repro.fuzzy.hedges import about

    fuzzy_threshold = about(threshold, spread_fraction=softness)

    def condition(values: Dict[str, FuzzyInterval]) -> float:
        observed = values.get(point)
        if observed is None:
            return 0.0
        bound = fuzzy_threshold.support[0] if above else fuzzy_threshold.support[1]
        if above:
            # Degree the observation exceeds the fuzzy threshold: how
            # possible it is that the value lies past the threshold band.
            beyond = FuzzyInterval.crisp_interval(bound, bound + 1e6)
        else:
            beyond = FuzzyInterval.crisp_interval(bound - 1e6, bound)
        return possibility(observed, beyond)

    return QualitativeRule(name, condition, conclusion, certainty)


class KnowledgeBase:
    """Fault modes + qualitative rules for one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        modes: Optional[Dict[str, List[FaultMode]]] = None,
    ) -> None:
        self.circuit = circuit
        self.modes = modes if modes is not None else common_fault_modes()
        self.rules: List[QualitativeRule] = []

    def add_rule(self, rule: QualitativeRule) -> None:
        if rule.conclusion not in self.circuit:
            raise KeyError(f"rule concludes about unknown component {rule.conclusion!r}")
        self.rules.append(rule)

    def modes_for(self, component: Component) -> List[FaultMode]:
        return self.modes.get(component.kind, [])

    # ------------------------------------------------------------------
    # Fault-mode matching
    # ------------------------------------------------------------------
    def match_fault_modes(
        self,
        measurements: Sequence[Measurement],
        candidates: Optional[Sequence[str]] = None,
        blur: float = 0.05,
    ) -> List[ModeMatch]:
        """Score every (candidate, mode) hypothesis against the evidence.

        For each candidate component and each of its common fault modes,
        the hypothesised defect is simulated and the predicted probe
        values are compared (Dc) with the actual measurements; the match
        degree is the worst per-point consistency.  ``blur`` widens the
        hypothesis predictions to absorb mode-representative imprecision
        (a "short" hypothesis is a class of defects, not one value).
        Results come back best-explanation first.
        """
        names = list(candidates) if candidates is not None else [
            c.name for c in self.circuit.components
        ]
        matches: List[ModeMatch] = []
        for name in names:
            try:
                component = self.circuit.component(name)
            except KeyError:
                continue
            for mode in self.modes_for(component):
                best_degree = -1.0
                best_points: Dict[str, float] = {}
                for fault in mode.faults(component):
                    predicted = self._simulate_fault(fault)
                    if predicted is None:
                        continue
                    per_point: Dict[str, float] = {}
                    for m in measurements:
                        point = m.point
                        if not point.startswith("V(") or point == "V(0)":
                            continue
                        net = point[2:-1]
                        if net not in predicted:
                            continue
                        hypothesis = FuzzyInterval.number(
                            predicted[net], blur * (1.0 + abs(predicted[net]))
                        )
                        per_point[point] = consistency(m.value, hypothesis).degree
                    if not per_point:
                        continue
                    degree = min(per_point.values())
                    if degree > best_degree:
                        best_degree, best_points = degree, per_point
                if best_degree < 0.0:
                    continue
                matches.append(ModeMatch(name, mode.name, best_degree, best_points))
        matches.sort(key=lambda m: (-m.degree, m.component, m.mode))
        return matches

    def _simulate_fault(self, fault: Fault) -> Optional[Dict[str, float]]:
        try:
            faulty = apply_fault(self.circuit, fault)
            op = DCSolver(faulty).solve()
        except (SimulationError, ValueError):
            return None
        return dict(op.voltages)

    # ------------------------------------------------------------------
    # Qualitative rules
    # ------------------------------------------------------------------
    def apply_rules(self, values: Dict[str, FuzzyInterval]) -> Dict[str, float]:
        """Fire every rule; returns accumulated implication per component."""
        implicated: Dict[str, float] = {}
        for rule in self.rules:
            weight = rule.fire(values)
            if weight <= 0.0:
                continue
            current = implicated.get(rule.conclusion, 0.0)
            implicated[rule.conclusion] = max(current, weight)
        return implicated

    # ------------------------------------------------------------------
    def refine(
        self,
        suspicions: Dict[str, float],
        measurements: Sequence[Measurement],
        top_k: int = 5,
    ) -> List[ModeMatch]:
        """Refine ATMS suspicions with fault-mode evidence.

        Only components already implicated (suspicion > 0) are
        hypothesised — the knowledge unit "should be applied only as a
        last step in order to refine candidates sets" (§7).  The returned
        matches are re-weighted by the candidate's suspicion.
        """
        implicated = [name for name, s in suspicions.items() if s > 0.0]
        matches = self.match_fault_modes(measurements, implicated)
        reweighted = [
            (
                ModeMatch(
                    m.component,
                    m.mode,
                    min(m.degree, suspicions.get(m.component, 0.0)),
                    m.per_point,
                ),
                m.degree,
            )
            for m in matches
        ]
        # Suspicion caps the weight; the raw simulation match breaks the
        # ties the cap creates (the best *explanation* leads).
        reweighted.sort(key=lambda mr: (-mr[0].degree, -mr[1], mr[0].component, mr[0].mode))
        return [m for m, _ in reweighted[:top_k]]
