"""Learning from experience (paper §7).

"When the system succeeds to locate a faulty component, a
symptom-failure rule which summarizes the work would be formed and an
estimation will be given to this component.  This rule is given with a
degree of certainty [...] in future diagnosis, FLAMES will give the
expert the rules which are attached to some candidates to help him in
making his decision."

A *symptom signature* abstracts one diagnosis outcome: per probe point,
the deviation direction and a coarse consistency bucket.  Episodes with
the same signature reinforce the induced symptom->failure rule; the
rule's certainty grows with repetition and is reported alongside the
candidates on later diagnoses of matching signatures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.diagnosis import DiagnosisResult

__all__ = [
    "SymptomSignature",
    "Episode",
    "LearnedRule",
    "ExperienceBase",
    "rule_identity",
]

#: Consistency buckets: fully consistent / slightly off / partial / frank.
_BUCKETS = (
    (0.999, "consistent"),
    (0.85, "slight"),
    (0.25, "partial"),
    (-1.0, "conflict"),
)


def _bucket(degree: float) -> str:
    for threshold, label in _BUCKETS:
        if degree >= threshold:
            return label
    return "conflict"  # pragma: no cover - the table is exhaustive


def rule_identity(
    signature: Union["SymptomSignature", Sequence[Sequence]],
    component: str,
    mode: str = "",
) -> str:
    """Canonical string identity of one symptom->failure rule.

    Two rules are "the same rule" when their sorted signature entries,
    component and mode all match — the equality `record`/`merge` use.
    This renders that triple as one canonical JSON string so it can key
    dictionaries, sqlite rows and gossip ledgers interchangeably,
    whatever mix of tuples/lists the signature arrives as.
    """
    if isinstance(signature, SymptomSignature):
        entries = signature.entries
    else:
        entries = tuple(sorted((str(p), str(b), int(d)) for p, b, d in signature))
    return json.dumps(
        [[list(e) for e in entries], str(component), str(mode)],
        separators=(",", ":"),
    )


@dataclass(frozen=True)
class SymptomSignature:
    """Qualitative abstraction of a diagnosis's consistency table.

    ``entries`` is a sorted tuple of ``(probe, bucket, direction)``.
    """

    entries: Tuple[Tuple[str, str, int], ...]

    @classmethod
    def from_result(cls, result: DiagnosisResult) -> "SymptomSignature":
        entries = tuple(
            sorted(
                (point, _bucket(cons.degree), cons.direction)
                for point, cons in result.consistencies.items()
            )
        )
        return cls(entries)

    @property
    def is_healthy(self) -> bool:
        return all(bucket == "consistent" for _, bucket, _ in self.entries)

    def similarity(self, other: "SymptomSignature") -> float:
        """Fraction of probe entries that agree (0 when probes differ)."""
        mine = {p: (b, d) for p, b, d in self.entries}
        theirs = {p: (b, d) for p, b, d in other.entries}
        shared = set(mine) & set(theirs)
        if not shared or set(mine) != set(theirs):
            return 0.0 if not shared else (
                sum(1.0 for p in shared if mine[p] == theirs[p]) / max(len(mine), len(theirs))
            )
        return sum(1.0 for p in shared if mine[p] == theirs[p]) / len(shared)

    def to_list(self) -> List[List]:
        """JSON-friendly representation."""
        return [[p, b, d] for p, b, d in self.entries]

    @classmethod
    def from_list(cls, data: Sequence[Sequence]) -> "SymptomSignature":
        return cls(tuple(sorted((str(p), str(b), int(d)) for p, b, d in data)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{p}:{b}{'+' if d > 0 else '-' if d < 0 else '='}" for p, b, d in self.entries]
        return "sig(" + ",".join(parts) + ")"


@dataclass(frozen=True)
class Episode:
    """One confirmed diagnosis: the symptoms and the verified culprit."""

    signature: SymptomSignature
    component: str
    mode: str = ""


@dataclass
class LearnedRule:
    """An induced symptom->failure rule with a certainty degree."""

    signature: SymptomSignature
    component: str
    mode: str
    certainty: float
    occurrences: int = 1

    def reinforce(self, base_certainty: float) -> None:
        """Repetition increases certainty asymptotically toward 1."""
        self.occurrences += 1
        self.certainty = 1.0 - (1.0 - self.certainty) * (1.0 - base_certainty)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = f"/{self.mode}" if self.mode else ""
        return f"{self.signature!r} => {self.component}{mode} @{self.certainty:.2f} (x{self.occurrences})"


class ExperienceBase:
    """Stores episodes and induces symptom-failure rules.

    ``base_certainty`` is the confidence granted to a rule after a single
    confirming episode (the paper attaches "a degree of certainty which
    is compatible with fuzzy logic ... and with the complex nature of
    analog circuits" — a single observation never yields certainty 1).
    """

    def __init__(self, base_certainty: float = 0.6) -> None:
        if not 0.0 < base_certainty < 1.0:
            raise ValueError("base certainty must be in (0, 1)")
        self.base_certainty = base_certainty
        self.rules: List[LearnedRule] = []
        self.episode_count = 0

    def __len__(self) -> int:
        return len(self.rules)

    # ------------------------------------------------------------------
    def _find(self, identity: str) -> "Optional[LearnedRule]":
        """The stored rule with this :func:`rule_identity`, if any."""
        for rule in self.rules:
            if rule_identity(rule.signature, rule.component, rule.mode) == identity:
                return rule
        return None

    def record(self, episode: Episode) -> LearnedRule:
        """Store a confirmed diagnosis; induce or reinforce its rule."""
        self.episode_count += 1
        rule = self._find(
            rule_identity(episode.signature, episode.component, episode.mode)
        )
        if rule is not None:
            rule.reinforce(self.base_certainty)
            return rule
        rule = LearnedRule(
            episode.signature, episode.component, episode.mode, self.base_certainty
        )
        self.rules.append(rule)
        return rule

    def record_result(
        self, result: DiagnosisResult, component: str, mode: str = ""
    ) -> LearnedRule:
        """Convenience: record a confirmed :class:`DiagnosisResult`."""
        return self.record(Episode(SymptomSignature.from_result(result), component, mode))

    # ------------------------------------------------------------------
    def suggest(
        self,
        signature: SymptomSignature,
        min_similarity: float = 1.0,
    ) -> List[Tuple[LearnedRule, float]]:
        """Rules matching a new symptom signature, best first.

        Each hit is returned with its effective weight
        ``min(similarity, certainty)``; with the default threshold only
        exact signature matches fire, lower thresholds allow analogical
        matches.
        """
        hits: List[Tuple[LearnedRule, float]] = []
        for rule in self.rules:
            similarity = rule.signature.similarity(signature)
            if similarity >= min_similarity:
                hits.append((rule, min(similarity, rule.certainty)))
        hits.sort(key=lambda rw: (-rw[1], rw[0].component))
        return hits

    def suggest_for_result(
        self, result: DiagnosisResult, min_similarity: float = 1.0
    ) -> List[Tuple[LearnedRule, float]]:
        return self.suggest(SymptomSignature.from_result(result), min_similarity)

    # ------------------------------------------------------------------
    def merge(self, other: "ExperienceBase") -> "ExperienceBase":
        """Fold another shop's rules into this base (in place).

        Used by the fleet service to combine the experience gathered by
        a batch of worker sessions back into the shared base.  Matching
        rules (same signature, component and mode) combine certainties
        the same way repetition does — ``1 - (1-c1)(1-c2)`` — and sum
        occurrence counts; new rules are copied over.
        """
        for rule in other.rules:
            mine = self._find(rule_identity(rule.signature, rule.component, rule.mode))
            if mine is not None:
                mine.occurrences += rule.occurrences
                mine.certainty = 1.0 - (1.0 - mine.certainty) * (1.0 - rule.certainty)
            else:
                self.rules.append(
                    LearnedRule(
                        rule.signature,
                        rule.component,
                        rule.mode,
                        rule.certainty,
                        rule.occurrences,
                    )
                )
        self.episode_count += other.episode_count
        return self

    # ------------------------------------------------------------------
    # Persistence: the repair shop's memory outlives the process.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "base_certainty": self.base_certainty,
            "episode_count": self.episode_count,
            "rules": [
                {
                    "signature": rule.signature.to_list(),
                    "component": rule.component,
                    "mode": rule.mode,
                    "certainty": rule.certainty,
                    "occurrences": rule.occurrences,
                }
                for rule in self.rules
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperienceBase":
        base = cls(base_certainty=float(data["base_certainty"]))
        base.episode_count = int(data.get("episode_count", 0))
        for entry in data.get("rules", []):
            base.rules.append(
                LearnedRule(
                    SymptomSignature.from_list(entry["signature"]),
                    str(entry["component"]),
                    str(entry.get("mode", "")),
                    float(entry["certainty"]),
                    int(entry.get("occurrences", 1)),
                )
            )
        return base

    def save(self, path: "Union[str, Path]") -> None:
        """Write the experience base to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: "Union[str, Path]") -> "ExperienceBase":
        """Read an experience base saved by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def boost_suspicions(
        self,
        suspicions: Dict[str, float],
        signature: SymptomSignature,
        min_similarity: float = 1.0,
    ) -> Dict[str, float]:
        """Re-rank suspicions using learned rules.

        Returns *ranking scores* (may exceed 1): a matching rule adds its
        weight on top of the evidence-based suspicion, which breaks the
        ties the ATMS alone leaves (a nogood implicates all its members
        equally; experience says which member it usually was).  Past
        experience supplements, never overrides, the current evidence —
        a component with zero suspicion gains at most the rule weight.
        """
        boosted = dict(suspicions)
        for rule, weight in self.suggest(signature, min_similarity):
            boosted[rule.component] = boosted.get(rule.component, 0.0) + weight
        return boosted
