"""Dynamic-mode diagnosis (the paper's "dynamic mode").

Reactive components are invisible to the static engine — a capacitor is
an open circuit at the DC operating point, so its correctness cannot be
tested from DC measurements.  Dynamic mode diagnoses from the *step
response*: the model database predicts envelope waveforms (golden
transient plus one-at-a-time tolerance sensitivity, the same recipe as
:mod:`repro.core.predict` extended over time), the bench measures the
faulty unit's waveform at a handful of sample instants, and each sample
is a coincidence scored with Dc exactly as in static mode.  Conflicts
become weighted nogoods over the sample's support set and feed the same
candidate machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.atms import NogoodDatabase, minimal_diagnoses, suspicion_scores
from repro.atms.assumptions import Assumption, Environment
from repro.atms.candidates import Diagnosis
from repro.atms.nogood import WeightedNogood
from repro.circuit.netlist import Circuit
from repro.circuit.simulate import SimulationError
from repro.circuit.transient import TransientResult, TransientSolver, Waveform
from repro.core.coincidence import classify
from repro.core.predict import _fault_probes, _toleranced_parameters
from repro.fuzzy import Consistency, FuzzyInterval, consistency

__all__ = ["DynamicPrediction", "DynamicDiagnosisResult", "DynamicDiagnoser"]

#: Minimum envelope half-width (volts) — the discretisation noise floor.
ENVELOPE_FLOOR = 5e-3


@dataclass(frozen=True)
class DynamicPrediction:
    """Envelope prediction of one net's voltage at one sample instant."""

    net: str
    time: float
    value: FuzzyInterval
    support: FrozenSet[str]


@dataclass
class DynamicDiagnosisResult:
    """Outcome of a dynamic-mode diagnosis."""

    consistencies: Dict[Tuple[str, float], Consistency]
    nogoods: List[WeightedNogood]
    diagnoses: List[Diagnosis]
    suspicions: Dict[str, float]

    @property
    def is_consistent(self) -> bool:
        return not self.nogoods

    def worst_sample(self) -> Optional[Tuple[str, float]]:
        """The (net, time) sample with the lowest Dc, or None if clean."""
        if not self.consistencies:
            return None
        return min(self.consistencies, key=lambda k: self.consistencies[k].degree)


class DynamicDiagnoser:
    """Step-response diagnosis of one circuit.

    Args:
        circuit: the golden design.
        waveforms: stimulus (source name -> waveform).
        dt: simulation step.
        duration: how long the response is observed.
        sample_times: the probe instants; defaults to five points spread
            over the duration (skipping t=0, where every response
            trivially matches).
        conflict_threshold: Dc-complement below which a sample
            discrepancy is treated as tolerance noise.
    """

    def __init__(
        self,
        circuit: Circuit,
        waveforms: Dict[str, Waveform],
        dt: float,
        duration: float,
        sample_times: Optional[Sequence[float]] = None,
        conflict_threshold: float = 0.05,
        max_candidate_size: int = 2,
    ) -> None:
        # Work on a private clone: the sensitivity sweep perturbs
        # parameters in place (with restore), and callers should never
        # observe transient mutation of their golden design.
        self.circuit = circuit.clone()
        self.waveforms = waveforms
        self.dt = dt
        self.duration = duration
        if sample_times is None:
            sample_times = [duration * k / 5.0 for k in range(1, 6)]
        self.sample_times = list(sample_times)
        self.conflict_threshold = conflict_threshold
        self.max_candidate_size = max_candidate_size
        self._predictions: Optional[Dict[Tuple[str, float], DynamicPrediction]] = None

    # ------------------------------------------------------------------
    def _simulate(self, circuit: Circuit) -> TransientResult:
        solver = TransientSolver(
            circuit, waveforms=self.waveforms, dt=self.dt, initial="dc"
        )
        return solver.run(self.duration)

    def simulate_golden(self) -> TransientResult:
        return self._simulate(self.circuit)

    # ------------------------------------------------------------------
    def predictions(self) -> Dict[Tuple[str, float], DynamicPrediction]:
        """Envelope per (net, sample time), with support sets."""
        if self._predictions is not None:
            return self._predictions
        golden = self._simulate(self.circuit)
        nets = [n.name for n in self.circuit.non_ground_nets]
        nominal = {
            (net, t): golden.voltage_at(net, t)
            for net in nets
            for t in self.sample_times
        }
        drops = {key: 0.0 for key in nominal}
        rises = {key: 0.0 for key in nominal}
        supports: Dict[Tuple[str, float], set] = {key: set() for key in nominal}

        for comp in self.circuit.components:
            probe_shift = {key: 0.0 for key in nominal}
            for parameter, tol_delta, probe_delta in _toleranced_parameters(comp):
                if probe_delta == 0.0:
                    continue
                scale = tol_delta / probe_delta
                base = getattr(comp, parameter)
                for sign in (+1.0, -1.0):
                    setattr(comp, parameter, base + sign * probe_delta)
                    try:
                        perturbed = self._simulate(self.circuit)
                    except SimulationError:
                        continue
                    finally:
                        setattr(comp, parameter, base)
                    for (net, t), v_nom in nominal.items():
                        shift = perturbed.voltage_at(net, t) - v_nom
                        probe_shift[(net, t)] = max(probe_shift[(net, t)], abs(shift))
                        if shift < 0:
                            drops[(net, t)] = max(drops[(net, t)], -shift * scale)
                        else:
                            rises[(net, t)] = max(rises[(net, t)], shift * scale)
            for parameter, extreme in _fault_probes(comp) + _capacitor_probes(comp):
                base = getattr(comp, parameter)
                setattr(comp, parameter, extreme)
                try:
                    perturbed = self._simulate(self.circuit)
                except SimulationError:
                    continue
                finally:
                    setattr(comp, parameter, base)
                for (net, t), v_nom in nominal.items():
                    shift = abs(perturbed.voltage_at(net, t) - v_nom)
                    probe_shift[(net, t)] = max(probe_shift[(net, t)], shift)
            for key in nominal:
                if probe_shift[key] > max(1e-3, 1e-3 * abs(nominal[key])):
                    supports[key].add(comp.name)

        self._predictions = {
            (net, t): DynamicPrediction(
                net,
                t,
                FuzzyInterval(
                    v_nom,
                    v_nom,
                    max(drops[(net, t)], ENVELOPE_FLOOR),
                    max(rises[(net, t)], ENVELOPE_FLOOR),
                ),
                frozenset(supports[(net, t)]),
            )
            for (net, t), v_nom in nominal.items()
        }
        return self._predictions

    # ------------------------------------------------------------------
    def diagnose(
        self,
        measured: TransientResult,
        nets: Optional[Sequence[str]] = None,
        imprecision: float = 0.01,
    ) -> DynamicDiagnosisResult:
        """Compare a measured step response against the envelopes."""
        predictions = self.predictions()
        probe_nets = list(nets) if nets is not None else sorted(
            {net for net, _ in predictions}
        )
        consistencies: Dict[Tuple[str, float], Consistency] = {}
        db = NogoodDatabase()
        for net in probe_nets:
            for t in self.sample_times:
                prediction = predictions.get((net, t))
                if prediction is None:
                    continue
                reading = FuzzyInterval.number(measured.voltage_at(net, t), imprecision)
                cons = consistency(reading, prediction.value)
                consistencies[(net, t)] = cons
                # Conflict strength uses the two-sided coincidence rule
                # (figure 4): a reading that merely *spans* the envelope
                # (wider instrument fuzz, same centre) is not a conflict.
                degree = classify(reading, prediction.value).conflict_degree
                if degree >= self.conflict_threshold and prediction.support:
                    db.add(
                        Environment(
                            frozenset(
                                Assumption(f"ok({name})", name)
                                for name in prediction.support
                            )
                        ),
                        min(degree, 1.0),
                    )
        nogoods = db.minimal(self.conflict_threshold)
        return DynamicDiagnosisResult(
            consistencies=consistencies,
            nogoods=nogoods,
            diagnoses=minimal_diagnoses(
                nogoods,
                threshold=self.conflict_threshold,
                max_size=self.max_candidate_size,
            ),
            suspicions={
                a.datum: s for a, s in suspicion_scores(nogoods).items()
            },
        )


def _capacitor_probes(comp) -> List[Tuple[str, float]]:
    """Fault-class probes for capacitors (dynamic-mode only)."""
    from repro.circuit.components import Capacitor

    if isinstance(comp, Capacitor):
        return [
            ("capacitance", comp.capacitance * 1e-3),  # open-ish (tiny C)
            ("capacitance", comp.capacitance * 1e3),  # short-ish (huge C)
        ]
    return []
