"""Best-test strategies with fuzzy entropy (paper §8).

The planner recommends "at any point the next best test to make, from a
set of predefined available tests".  Instead of GDE/FIS-style numeric
probabilities ("with its heavy calculus and hard assumptions"), each
component carries a *fuzzy estimation* of faultiness — a linguistic term
on [0, 1] — and a candidate probe is scored by the *expected fuzzy
entropy* of the estimations it would leave behind:

* probing a point whose prediction is supported by components we are
  unsure about is informative (either outcome moves their estimations
  toward certainty);
* probing a point supported only by components already known good (or
  already condemned) is wasted.

The expected entropy of a test is the outcome-weighted fuzzy sum of the
post-outcome system entropies, with the outcome weights themselves fuzzy
(the estimated chance the probe conflicts).  Tests are ranked by
centroid defuzzification of their expected entropy.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.diagnosis import DiagnosisResult, Flames
from repro.fuzzy import (
    FuzzyInterval,
    LinguisticVariable,
    expected_entropy,
    fuzzy_entropy,
    rank_key,
)
from repro.fuzzy.linguistic import FAULTINESS_5

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runtime.context import RunContext

__all__ = ["TestRecommendation", "BestTestPlanner"]


@dataclass(frozen=True)
class TestRecommendation:
    """A candidate probe with its expected post-test fuzzy entropy."""

    point: str
    expected: FuzzyInterval
    conflict_weight: FuzzyInterval
    supporters: frozenset

    @property
    def score(self) -> float:
        """Defuzzified expected entropy (lower is better)."""
        return self.expected.centroid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Test({self.point} E~{self.score:.3f})"


class BestTestPlanner:
    """Fuzzy-entropy probe selection for one engine instance."""

    def __init__(
        self,
        engine: Flames,
        scale: LinguisticVariable = FAULTINESS_5,
        estimation_spread: float = 0.08,
    ) -> None:
        self.engine = engine
        self.scale = scale
        self.estimation_spread = estimation_spread

    # ------------------------------------------------------------------
    # Fuzzy faultiness estimations
    # ------------------------------------------------------------------
    def estimations(self, result: DiagnosisResult) -> Dict[str, FuzzyInterval]:
        """Fuzzy faultiness estimation per component.

        A component's suspicion (strongest nogood implicating it) becomes
        a fuzzy estimation on [0, 1]: the matching linguistic term of the
        configured scale, so the numbers the strategy unit manipulates
        are exactly the paper's semi-qualitative estimations.
        """
        estimations: Dict[str, FuzzyInterval] = {}
        for comp in self.engine.circuit.components:
            suspicion = result.suspicions.get(comp.name, 0.0)
            term = self.scale.classify(min(max(suspicion, 0.0), 1.0))
            estimations[comp.name] = self.scale.term(term).value
        return estimations

    def system_entropy(self, result: DiagnosisResult) -> FuzzyInterval:
        """Current fuzzy entropy of the candidate estimations."""
        return fuzzy_entropy(self.estimations(result).values())

    # ------------------------------------------------------------------
    # Test ranking
    # ------------------------------------------------------------------
    def candidate_points(
        self, result: DiagnosisResult, available: Optional[Sequence[str]] = None
    ) -> List[str]:
        """Probe-able voltage points not yet measured."""
        measured = {m.point for m in result.measurements}
        pool = (
            list(available)
            if available is not None
            else [
                name
                for name in self.engine.network.variables
                if name.startswith("V(") and name != "V(0)"
            ]
        )
        return sorted(p for p in pool if p not in measured)

    def recommend(
        self,
        result: DiagnosisResult,
        available: Optional[Sequence[str]] = None,
        ctx: Optional["RunContext"] = None,
    ) -> List[TestRecommendation]:
        """Rank candidate probes by expected fuzzy entropy, best first.

        A ``ctx`` bounds the search: each candidate evaluation charges
        one tick, and on expiry the points scored so far are ranked and
        returned (a partial-but-ordered recommendation list).
        """
        estimations = self.estimations(result)
        support = self.engine.prediction_support()
        recommendations: List[TestRecommendation] = []
        points = self.candidate_points(result, available)
        span = ctx.span("plan", points=len(points)) if ctx is not None else nullcontext()
        with span:
            for point in points:
                if ctx is not None and ctx.tick():
                    break
                supporters = frozenset(support.get(point, frozenset()))
                rec = self._evaluate(point, supporters, estimations)
                recommendations.append(rec)
        recommendations.sort(key=lambda r: (rank_key(r.expected), r.point))
        return recommendations

    def best(
        self,
        result: DiagnosisResult,
        available: Optional[Sequence[str]] = None,
        ctx: Optional["RunContext"] = None,
    ) -> Optional[TestRecommendation]:
        ranked = self.recommend(result, available, ctx=ctx)
        return ranked[0] if ranked else None

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        point: str,
        supporters: frozenset,
        estimations: Dict[str, FuzzyInterval],
    ) -> TestRecommendation:
        """Expected fuzzy entropy after probing ``point``.

        Outcome "conflict" raises the supporters' estimations toward
        faulty, outcome "consistent" lowers them toward correct; the
        conflict weight is the fuzzy mean faultiness of the supporters
        (no supporter can conflict -> weight zero).
        """
        if supporters:
            total = FuzzyInterval.crisp(0.0)
            for name in supporters:
                total = total + estimations.get(name, FuzzyInterval.crisp(0.0))
            conflict_weight = _clamp_unit(total.scale(1.0 / len(supporters)))
        else:
            conflict_weight = FuzzyInterval.crisp(0.0)
        consistent_weight = _clamp_unit(FuzzyInterval.crisp(1.0) - conflict_weight)

        def outcome(raise_supporters: bool) -> FuzzyInterval:
            post = dict(estimations)
            for name in supporters:
                fi = post.get(name, FuzzyInterval.crisp(0.0))
                if raise_supporters:
                    post[name] = _clamp_unit(
                        FuzzyInterval.crisp(1.0) - (FuzzyInterval.crisp(1.0) - fi).scale(0.5)
                    )
                else:
                    post[name] = _clamp_unit(fi.scale(0.5))
            return fuzzy_entropy(post.values())

        expected = expected_entropy(
            [outcome(False), outcome(True)],
            [consistent_weight, conflict_weight],
        )
        return TestRecommendation(point, expected, conflict_weight, supporters)


def _clamp_unit(value: FuzzyInterval) -> FuzzyInterval:
    clip = lambda x: min(max(x, 0.0), 1.0)
    s_lo, s_hi = value.support
    return FuzzyInterval.from_support_core(
        (clip(s_lo), clip(s_hi)), (clip(value.m1), clip(value.m2))
    )
