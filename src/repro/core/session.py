"""The full FLAMES system: one session per unit under test (figure 3).

The paper draws FLAMES as five cooperating units with the expert wired
to each; :class:`TroubleshootingSession` is that wiring.  A session
accumulates measurements on one unit, re-diagnoses after each
observation, merges the fuzzy-ATMS suspicions with the experience
base's learned rules, offers fault-mode refinements and next-best-test
recommendations, and — when the expert confirms the repair — records
the episode so the next unit benefits.

The session is deliberately *open*: the knowledge base, experience base
and planner are injectable, and every intermediate artefact (the raw
:class:`DiagnosisResult`, the mode matches, the ranked tests) is
exposed rather than hidden behind a verdict.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.circuit.measurements import Measurement, probe
from repro.circuit.netlist import Circuit
from repro.circuit.simulate import OperatingPoint
from repro.core.diagnosis import DiagnosisResult, Flames, FlamesConfig
from repro.core.knowledge import KnowledgeBase, ModeMatch
from repro.core.learning import ExperienceBase, LearnedRule, SymptomSignature
from repro.core.report import render_report
from repro.core.strategy import BestTestPlanner, TestRecommendation

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runtime.context import RunContext

__all__ = ["TroubleshootingSession"]


class TroubleshootingSession:
    """Interactive diagnosis of one unit under test.

    Args:
        circuit: the golden design (the model database is built from it).
        config: engine configuration.
        experience: a shared :class:`ExperienceBase` carried across
            sessions (the repair shop's memory); a fresh one by default.
        knowledge: the fault-mode/rule base; built with the common
            catalogue by default.
        planner: the best-test strategy unit.
        kernel: shorthand for ``config.kernel`` — ``"reference"`` or
            ``"fast"`` (see README "Kernel"); overrides the config's
            kernel when given.
        sanitize: measurement policy at the observation boundary —
            ``"strict"`` (the default: observations enter verbatim,
            byte-identical to the pre-resilience session) or ``"repair"``
            (the resilience sanitizer drops absurd readings and widens
            out-of-range ones; the session runs *degraded* and
            :meth:`report` says so — see README "Resilience").
    """

    def __init__(
        self,
        circuit: Circuit,
        config: Optional[FlamesConfig] = None,
        experience: Optional[ExperienceBase] = None,
        knowledge: Optional[KnowledgeBase] = None,
        planner: Optional[BestTestPlanner] = None,
        kernel: Optional[str] = None,
        sanitize: str = "strict",
    ) -> None:
        from repro.resilience.sanitize import POLICIES, SanitizeReport

        if kernel is not None:
            config = replace(config if config is not None else FlamesConfig(), kernel=kernel)
        if sanitize not in POLICIES:
            raise ValueError(
                f"unknown sanitize policy {sanitize!r}; choices: {', '.join(POLICIES)}"
            )
        self.engine = Flames(circuit, config)
        self.experience = experience if experience is not None else ExperienceBase()
        self.knowledge = knowledge if knowledge is not None else KnowledgeBase(circuit)
        self.planner = planner if planner is not None else BestTestPlanner(self.engine)
        self.sanitize = sanitize
        self.sanitize_report = SanitizeReport()
        self.measurements: List[Measurement] = []
        self._result: Optional[DiagnosisResult] = None

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def observe(
        self, *measurements: Measurement, ctx: Optional["RunContext"] = None
    ) -> DiagnosisResult:
        """Add measurements and re-diagnose (bounded by ``ctx`` if given).

        Under the ``"repair"`` sanitize policy, malformed observations
        are dropped/widened at this boundary instead of poisoning the
        constraint network; the actions accumulate in
        :attr:`sanitize_report` and the session is :attr:`degraded`.
        Raises ``ValueError`` when sanitisation leaves nothing to add.
        """
        if not measurements:
            raise ValueError("observe() needs at least one measurement")
        if self.sanitize == "repair":
            from repro.resilience.sanitize import sanitize_measurements

            survivors, report = sanitize_measurements(measurements)
            self.sanitize_report.actions.extend(report.actions)
            if not survivors:
                raise ValueError(
                    "sanitizer dropped every observation: "
                    + "; ".join(a.reason for a in report.actions)
                )
            measurements = tuple(survivors)
        for m in measurements:
            self.measurements = [x for x in self.measurements if x.point != m.point]
            self.measurements.append(m)
        self._result = self.engine.diagnose(self.measurements, ctx=ctx)
        return self._result

    def observe_probe(
        self,
        op: OperatingPoint,
        net: str,
        imprecision: float = 0.02,
        ctx: Optional["RunContext"] = None,
    ) -> DiagnosisResult:
        """Convenience: probe a simulated bench and observe the reading."""
        return self.observe(probe(op, net, imprecision), ctx=ctx)

    @property
    def result(self) -> DiagnosisResult:
        if self._result is None:
            raise RuntimeError("no measurements observed yet")
        return self._result

    @property
    def has_observations(self) -> bool:
        return self._result is not None

    @property
    def kernel(self) -> str:
        """Which kernel this session's engine runs on."""
        return self.engine.config.kernel

    @property
    def degraded(self) -> bool:
        """True when the sanitizer had to repair this unit's observations."""
        return self.sanitize_report.degraded

    @property
    def unit_looks_healthy(self) -> bool:
        return self.has_observations and self.result.is_consistent

    # ------------------------------------------------------------------
    # Candidates (evidence + experience)
    # ------------------------------------------------------------------
    def signature(self) -> SymptomSignature:
        return SymptomSignature.from_result(self.result)

    def candidates(self) -> List[Tuple[str, float]]:
        """Ranked components: ATMS suspicion boosted by learned rules.

        Scores above 1 mean past experience corroborates the evidence.
        """
        boosted = self.experience.boost_suspicions(
            self.result.suspicions, self.signature()
        )
        return sorted(boosted.items(), key=lambda kv: (-kv[1], kv[0]))

    def refinements(self, top_k: int = 5) -> List[ModeMatch]:
        """Fault-mode hypotheses for the current suspects."""
        return self.knowledge.refine(
            self.result.suspicions, self.measurements, top_k=top_k
        )

    def matching_experience(self) -> List[Tuple[LearnedRule, float]]:
        """Learned rules whose symptom signature matches this unit."""
        return self.experience.suggest(self.signature())

    # ------------------------------------------------------------------
    # Next test
    # ------------------------------------------------------------------
    def recommend_next(
        self,
        available: Optional[Sequence[str]] = None,
        ctx: Optional["RunContext"] = None,
    ) -> Optional[TestRecommendation]:
        """The §8 unit: the probe minimising expected fuzzy entropy."""
        return self.planner.best(self.result, available, ctx=ctx)

    # ------------------------------------------------------------------
    # Closure
    # ------------------------------------------------------------------
    def confirm(self, component: str, mode: str = "") -> LearnedRule:
        """The expert confirms the repair; the shop learns (§7)."""
        if component not in self.engine.circuit:
            raise KeyError(f"unknown component {component!r}")
        return self.experience.record_result(self.result, component, mode)

    def report(self, title: str = "FLAMES troubleshooting session") -> str:
        refinements = self.refinements() if not self.result.is_consistent else None
        text = render_report(self.result, refinements, title=title)
        if self.degraded:
            lines = ["", "DEGRADED MODE: some observations were repaired on entry"]
            for action in self.sanitize_report.actions:
                lines.append(f"  {action.point}: {action.action} ({action.reason})")
            text += "\n".join(lines)
        return text

    def next_unit(self) -> None:
        """Start on a fresh unit under test (experience is kept)."""
        from repro.resilience.sanitize import SanitizeReport

        self.measurements = []
        self._result = None
        self.sanitize_report = SanitizeReport()
