"""Nominal predictions from the model database (paper §6.2).

FLAMES's database unit holds the circuit's correct model; the *predicted*
value of every quantity is the designed operating point with component
tolerances propagated into fuzzy spreads.  We compute it by solving the
golden circuit's DC operating point and perturbing each toleranced
parameter to both ends of its tolerance band (one-at-a-time sensitivity).
The fuzzy prediction of a quantity is then

    ``[nominal, nominal, sum_k drop_k, sum_k rise_k]``

— first-order tolerance accumulation, the numeric counterpart of adding
slope widths in the paper's fuzzy arithmetic — and its *support set* is
the set of components whose perturbation moves the quantity measurably,
which for a single-path circuit is exactly "all the modules upstream of
the probe" (the paper's initial candidate set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.circuit.components import (
    Amplifier,
    BJT,
    Capacitor,
    CurrentSource,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, Component
from repro.circuit.simulate import DCSolver, OperatingPoint, SimulationError
from repro.fuzzy import FuzzyInterval

__all__ = ["Prediction", "predict_nominal", "variable_values"]

#: A parameter perturbation must move a quantity by more than this to put
#: the component into the quantity's support set.
SUPPORT_EPSILON_VOLTAGE = 1e-4
SUPPORT_EPSILON_CURRENT = 1e-9


def _support_epsilon(name: str, nominal_value: float) -> float:
    absolute = (
        SUPPORT_EPSILON_CURRENT if name.startswith("I(") else SUPPORT_EPSILON_VOLTAGE
    )
    return max(absolute, 1e-3 * abs(nominal_value))


@dataclass(frozen=True)
class Prediction:
    """A fuzzy nominal prediction plus the components it depends on."""

    value: FuzzyInterval
    support: FrozenSet[str]


def variable_values(circuit: Circuit, op: OperatingPoint) -> Dict[str, float]:
    """Map an operating point onto the constraint network's variable names.

    Sign conventions match :mod:`repro.circuit.constraints`: two-terminal
    currents flow first-pin -> second-pin through the device; BJT base and
    collector currents flow into the device, the emitter current out.
    """
    values: Dict[str, float] = {}
    for net, v in op.voltages.items():
        values[f"V({net})"] = v
    for comp in circuit.components:
        if isinstance(comp, (Resistor, Diode, Amplifier, VoltageSource)):
            values[f"I({comp.name})"] = op.currents[comp.name]
        elif isinstance(comp, CurrentSource):
            # The network's I() is the p->n branch current; the source
            # pushes `current` n->p internally.
            values[f"I({comp.name})"] = -op.currents[comp.name]
        elif isinstance(comp, BJT):
            values[f"I({comp.name}.b)"] = op.currents[f"{comp.name}.b"]
            values[f"I({comp.name}.c)"] = op.currents[f"{comp.name}.c"]
            values[f"I({comp.name}.e)"] = op.currents[f"{comp.name}.e"]
        elif isinstance(comp, Capacitor):
            continue
    return values


#: Relative probe used for support detection when a parameter carries no
#: tolerance: a prediction still *depends* on a perfectly toleranced
#: component, so structural sensitivity is probed at 1 %.
_SUPPORT_PROBE = 0.01


def _toleranced_parameters(comp: Component) -> List[Tuple[str, float, float]]:
    """(parameter, tolerance-delta, probe-delta) triples for one component.

    The solver is perturbed by the *probe* delta; the fuzzy spread is the
    observed shift rescaled to the *tolerance* delta (zero when the
    component is ideal), while support membership uses the probe shift —
    dependence does not vanish just because the tolerance does.
    """

    def entry(parameter: str, relative_tolerance: float) -> Tuple[str, float, float]:
        base = abs(getattr(comp, parameter))
        return (
            parameter,
            base * relative_tolerance,
            base * max(relative_tolerance, _SUPPORT_PROBE),
        )

    if isinstance(comp, Resistor):
        return [entry("resistance", comp.tolerance)]
    if isinstance(comp, BJT):
        return [entry("beta", comp.beta_tolerance), entry("vbe_on", comp.tolerance)]
    if isinstance(comp, Diode):
        return [entry("v_on", comp.tolerance)]
    if isinstance(comp, Amplifier):
        # The gain tolerance is absolute (paper figure 2).
        return [("gain", comp.tolerance, max(comp.tolerance, _SUPPORT_PROBE))]
    if isinstance(comp, VoltageSource):
        return [entry("voltage", comp.tolerance)]
    if isinstance(comp, CurrentSource):
        return [entry("current", comp.tolerance)]
    return []


def _fault_probes(comp: Component) -> List[Tuple[str, float]]:
    """(parameter, absolute-value) fault-class probes for support detection.

    Local (tolerance-sized) sensitivity understates dependence: a shorted
    emitter resistor moves a follower's output enormously even though the
    small-signal derivative is almost zero.  A prediction's support must
    contain every component whose *failure* could move the quantity, so
    each component is additionally probed at open/short-class extremes.
    Supply sources are exempt (the bench verifies supplies before
    diagnosis, as the paper's experiments implicitly do).
    """
    if isinstance(comp, Resistor):
        return [
            ("resistance", comp.resistance * 1e3),
            ("resistance", comp.resistance * 1e-3),
        ]
    if isinstance(comp, BJT):
        return [
            ("vbe_on", 1e6),  # junction never conducts: open-class
            ("beta", max(comp.beta * 0.05, 1.0)),
            ("beta", comp.beta * 10.0),
        ]
    if isinstance(comp, Diode):
        return [("v_on", 1e6), ("v_on", 0.0)]
    if isinstance(comp, Amplifier):
        return [("gain", 0.0), ("gain", comp.gain * 2.0 + 1.0)]
    return []


def predict_nominal(circuit: Circuit) -> Dict[str, Prediction]:
    """Fuzzy nominal prediction (value + support) per network variable.

    Raises :class:`~repro.circuit.simulate.SimulationError` when even the
    golden circuit has no DC operating point.
    """
    nominal_op = DCSolver(circuit).solve()
    nominal = variable_values(circuit, nominal_op)
    drops: Dict[str, float] = {name: 0.0 for name in nominal}
    rises: Dict[str, float] = {name: 0.0 for name in nominal}
    supports: Dict[str, set] = {name: set() for name in nominal}

    for comp in circuit.components:
        comp_drop = {name: 0.0 for name in nominal}
        comp_rise = {name: 0.0 for name in nominal}
        comp_probe = {name: 0.0 for name in nominal}
        for parameter, tol_delta, probe_delta in _toleranced_parameters(comp):
            if probe_delta == 0.0:
                continue
            scale = tol_delta / probe_delta
            base = getattr(comp, parameter)
            for sign in (+1.0, -1.0):
                setattr(comp, parameter, base + sign * probe_delta)
                try:
                    perturbed = variable_values(circuit, DCSolver(circuit).solve())
                except SimulationError:
                    continue
                finally:
                    setattr(comp, parameter, base)
                for name, v_nom in nominal.items():
                    shift = perturbed.get(name, v_nom) - v_nom
                    comp_probe[name] = max(comp_probe[name], abs(shift))
                    if shift < 0:
                        comp_drop[name] = max(comp_drop[name], -shift * scale)
                    else:
                        comp_rise[name] = max(comp_rise[name], shift * scale)
        for parameter, extreme in _fault_probes(comp):
            base = getattr(comp, parameter)
            setattr(comp, parameter, extreme)
            try:
                perturbed = variable_values(circuit, DCSolver(circuit).solve())
            except SimulationError:
                continue
            finally:
                setattr(comp, parameter, base)
            for name, v_nom in nominal.items():
                shift = abs(perturbed.get(name, v_nom) - v_nom)
                comp_probe[name] = max(comp_probe[name], shift)
        for name in nominal:
            drops[name] += comp_drop[name]
            rises[name] += comp_rise[name]
            if comp_probe[name] > _support_epsilon(name, nominal[name]):
                supports[name].add(comp.name)

    predictions: Dict[str, Prediction] = {}
    for name, v_nom in nominal.items():
        floor = _noise_floor(name)
        predictions[name] = Prediction(
            FuzzyInterval(
                v_nom, v_nom, max(drops[name], floor), max(rises[name], floor)
            ),
            frozenset(supports[name]),
        )
    return predictions


#: Minimum prediction spread — the model's numerical noise floor.  The
#: simulator's gmin leakage and float arithmetic perturb quantities at
#: the nano scale; without a floor, two representations of the same
#: (near-)zero current can read as disjoint and produce ghost conflicts
#: of degree 1.
PREDICTION_FLOOR_VOLTAGE = 1e-3
PREDICTION_FLOOR_CURRENT = 1e-6


def _noise_floor(name: str) -> float:
    return PREDICTION_FLOOR_CURRENT if name.startswith("I(") else PREDICTION_FLOOR_VOLTAGE
