"""The conflict-recognition engine (paper §6.1).

"The central task of diagnosis is to detect discrepancies between
predicted values and measurements and to build the sets of candidates
which support these discrepancies."  This module turns a coincidence
between two :class:`~repro.core.values.FuzzyValue` objects into a
:class:`RecognizedConflict` — the weighted nogood over the union of the
two supporting environments — which the engine hands to the fuzzy ATMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional

from repro.core.coincidence import Coincidence, classify
from repro.core.values import FuzzyValue
from repro.fuzzy.interval import FuzzyInterval
from repro.fuzzy.logic import fold, t_norm_min

__all__ = ["RecognizedConflict", "recognize"]

#: Conflicts weaker than this are treated as tolerance noise.
MIN_CONFLICT_DEGREE = 1e-6


@dataclass(frozen=True)
class RecognizedConflict:
    """A discrepancy between two values for the same quantity.

    ``environment`` is the union of the supporting assumption sets — the
    nogood; ``degree`` its seriousness (``1 - Dc`` damped by the
    certainty of the participating derivations); ``direction`` locates
    the *newer* value relative to the older one, which is the sign
    information figure 7 exploits.
    """

    variable: str
    environment: FrozenSet[str]
    degree: float
    direction: int
    coincidence: Coincidence
    newer: FuzzyValue
    older: FuzzyValue

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        env = "{" + ",".join(sorted(self.environment)) + "}"
        return f"Conflict({self.variable} {env}@{self.degree:.3g} dir={self.direction:+d})"


def recognize(
    variable: str,
    newer: FuzzyValue,
    older: FuzzyValue,
    classify_fn: Callable[[FuzzyInterval, FuzzyInterval], Coincidence] = classify,
) -> Optional[RecognizedConflict]:
    """Detect a conflict between a new value and an established one.

    Returns ``None`` for corroborations and refinements (no discrepancy),
    and for pairs whose supporting environments *overlap*: two values
    sharing an assumption also share that component's fuzzy tolerance, so
    a direct Dc between them double-counts the shared spread and
    overstates the conflict.  This is the paper's coincidence-resolution
    principle — "a coincidence between two propagated values is
    considered as a coincidence between either of them with the predicted
    value" — which always pits a derivation against an independent one.
    Two observations of the *same* quantity with empty environments that
    disagree indicate contradictory measurements; the conflict is still
    reported (with an empty nogood) so the caller can flag the data.

    ``classify_fn`` lets the fast kernel substitute a memoized
    coincidence classifier; it must be observationally identical to
    :func:`~repro.core.coincidence.classify`.
    """
    if newer.environment & older.environment:
        return None
    coincidence = classify_fn(newer.interval, older.interval)
    raw = coincidence.conflict_degree
    if raw <= MIN_CONFLICT_DEGREE:
        return None
    degree = fold(t_norm_min, (raw, newer.degree, older.degree), empty=1.0)
    if degree <= MIN_CONFLICT_DEGREE:
        return None
    return RecognizedConflict(
        variable=variable,
        environment=newer.environment | older.environment,
        degree=degree,
        direction=coincidence.direction,
        coincidence=coincidence,
        newer=newer,
        older=older,
    )
