"""Fuzzy values carried by the propagation engine.

A quantity's *label* (in the paper's interval-labelling sense — not to
be confused with the ATMS label) is the set of fuzzy values currently
believed for it.  Each value records the fuzzy interval, the set of
component assumptions supporting it, the certainty degree accumulated
along its derivation, and a provenance string for explanations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.fuzzy import FuzzyInterval

__all__ = ["FuzzyValue"]


@dataclass(frozen=True)
class FuzzyValue:
    """A fuzzy interval believed for a quantity under some assumptions.

    Attributes:
        interval: the fuzzy interval of possible values.
        environment: names of the components whose correctness supports
            this value (empty for seeds and measurements).
        degree: certainty accumulated along the derivation (1.0 unless an
            uncertain rule participated).
        source: provenance — ``"seed"``, ``"measurement"`` or the name of
            the constraint that produced it.
    """

    interval: FuzzyInterval
    environment: FrozenSet[str] = frozenset()
    degree: float = 1.0
    source: str = ""
    #: How many narrowing merges produced this entry; the propagator
    #: freezes entries past its narrowing budget so loop relaxation has a
    #: hard stop independent of slack arithmetic.
    revision: int = 0
    #: True when the value descends from a physical seed bound.  A
    #: seed-descended interval is a *valid* bound but its width reflects
    #: ignorance, not the model's implication, so the conflict engine
    #: must not read Dc mass into it.
    from_seed: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.degree <= 1.0:
            raise ValueError(f"value degree {self.degree} outside (0, 1]")

    @property
    def is_measurement(self) -> bool:
        return self.source == "measurement"

    @property
    def is_seed(self) -> bool:
        return self.source == "seed"

    @property
    def width(self) -> float:
        return self.interval.width

    def subsumes(self, other: "FuzzyValue", slack: float = 0.0) -> bool:
        """True when this value makes ``other`` redundant.

        A value is redundant when a no-stronger assumption set already
        supports an interval at least as narrow (up to ``slack`` on both
        the support and the core — the slack is what guarantees the
        propagation loop terminates) at an equal-or-higher degree.
        """
        if not self.environment <= other.environment:
            return False
        if self.degree < other.degree:
            return False
        s_lo, s_hi = self.interval.support
        o_lo, o_hi = other.interval.support
        return (
            o_lo - slack <= s_lo
            and s_hi <= o_hi + slack
            and other.interval.m1 - slack <= self.interval.m1
            and self.interval.m2 <= other.interval.m2 + slack
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        env = "{" + ",".join(sorted(self.environment)) + "}"
        deg = "" if self.degree == 1.0 else f"@{self.degree:g}"
        return f"{self.interval!r}{env}{deg}<{self.source}>"
