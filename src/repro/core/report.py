"""Human-readable diagnosis reports.

The expert is FLAMES's final consumer (figure 3 draws the expert wired
to every unit); this module renders a :class:`DiagnosisResult` — and
optionally the knowledge-base refinement — as the kind of table the
paper's figure 7 prints.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.diagnosis import DiagnosisResult
from repro.core.knowledge import ModeMatch

__all__ = ["render_report", "render_consistency_row", "render_nogoods"]


def render_consistency_row(result: DiagnosisResult, points: Sequence[str]) -> str:
    """One figure-7-style line: ``Dc(point) = value`` per probe."""
    cells = []
    for point in points:
        cons = result.consistencies.get(point)
        if cons is None:
            continue
        cells.append(f"Dc({point})={cons.signed:+.2f}")
    return "  ".join(cells)


def render_nogoods(result: DiagnosisResult, limit: int = 8) -> List[str]:
    lines = []
    for nogood in result.nogoods[:limit]:
        comps = ",".join(sorted(a.datum for a in nogood.environment))
        lines.append(f"  {{{comps}}} @ {nogood.degree:.2f}")
    if len(result.nogoods) > limit:
        lines.append(f"  ... {len(result.nogoods) - limit} more")
    return lines


def render_report(
    result: DiagnosisResult,
    refinements: Optional[Sequence[ModeMatch]] = None,
    title: str = "FLAMES diagnosis",
) -> str:
    """Full multi-section text report."""
    lines = [title, "=" * len(title)]

    lines.append("measurements vs predictions:")
    for m in result.measurements:
        predicted = result.predictions.get(m.point)
        cons = result.consistencies.get(m.point)
        if predicted is None or cons is None:
            lines.append(f"  {m.point}: measured {m.value!r} (no prediction)")
            continue
        direction = {1: "high", -1: "low", 0: "ok"}[cons.direction]
        lines.append(
            f"  {m.point}: measured {m.value!r} vs predicted {predicted!r}"
            f"  Dc={cons.degree:.2f} ({direction})"
        )

    if result.is_consistent:
        lines.append("no conflicts above threshold: unit behaves nominally")
        return "\n".join(lines)

    lines.append("minimal nogoods (most serious first):")
    lines.extend(render_nogoods(result))

    lines.append("component suspicions:")
    for name, score in result.ranked_components():
        lines.append(f"  {name}: {score:.2f}")

    lines.append("minimal candidates:")
    for diag in result.diagnoses[:8]:
        comps = ",".join(diag.components)
        lines.append(f"  [{comps}] @ {diag.degree:.2f}")

    if refinements:
        lines.append("fault-mode refinement (knowledge base):")
        for match in refinements:
            lines.append(f"  {match.component} {match.mode}: {match.degree:.2f}")

    return "\n".join(lines)
