"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables [name ...]`` — regenerate the paper's tables (all by default;
  names: figure2, figure5, figure7, scaling, strategy, learning,
  multifault, dynamic, ablations).
* ``diagnose NETLIST --probe NET=VOLTS [--probe ...]`` — diagnose a unit
  described by a SPICE-subset netlist from bench readings
  (``--imprecision`` sets the instrument tolerance, ``--json`` emits a
  machine-readable result).
* ``batch MANIFEST`` — fleet mode: run a JSON manifest of diagnosis
  jobs through the parallel :class:`~repro.service.FleetEngine` with
  result caching and telemetry (see README "Fleet mode").
* ``serve`` — server mode: keep a warm engine resident and serve
  diagnosis over HTTP/JSON with admission control and graceful drain
  (see README "Server mode").
* ``cluster`` — cluster mode: a consistent-hash gateway sharding the
  same API across ``--replicas N`` server subprocesses, with failover,
  replica supervision and experience gossip (see README "Cluster
  mode").
* ``tenants create|rotate|revoke|list|report`` — administer the durable
  store's tenants: provision an API key, rotate or revoke keys,
  enumerate tenants, or render a tenant's fleet-health report from its
  diagnosis history (see README "Persistence & tenants").
* ``store backup|scrub|status`` — operate on a durable store file:
  online backup under live writers, seal/integrity scrub with corrupt-
  row purge, or a status snapshot (see README "Store lifecycle").
* ``watch`` — streaming mode: simulate a unit live (optionally breaking
  it mid-stream), feed the telemetry through the drift detector and
  render each incremental re-diagnosis as it happens (see README
  "Streaming mode").
* ``corpus generate|run`` — corpus mode: generate a seeded scenario
  corpus (large netlists, multi-fault, intermittent, tempco drift,
  tolerance stackup) and score any kernel against it —
  rank-of-true-fault accuracy and latency percentiles per scenario
  class, with an optional committed accuracy floor (see README "Corpus
  mode").
* ``simulate NETLIST`` — print the DC operating point of a netlist.
* ``demo`` — the quickstart walk-through on the three-stage amplifier.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.circuit.measurements import Measurement
from repro.circuit.simulate import DCSolver
from repro.circuit.spice import parse_netlist
from repro.core.diagnosis import Flames
from repro.core.knowledge import KnowledgeBase
from repro.core.report import render_report
from repro.fuzzy import FuzzyInterval

_TABLES = {
    "figure2": "format_figure2",
    "figure5": "format_figure5",
    "figure7": "format_figure7",
    "scaling": "format_scaling",
    "strategy": "format_strategy_eval",
    "learning": "format_learning_eval",
    "multifault": "format_multifault",
    "dynamic": "format_dynamic_eval",
}


def _cmd_tables(args: argparse.Namespace) -> int:
    import repro.experiments as experiments

    names = args.names or list(_TABLES) + ["ablations"]
    for name in names:
        if name == "ablations":
            from repro.experiments.ablations import format_ablation

            print(format_ablation())
        elif name in _TABLES:
            print(getattr(experiments, _TABLES[name])())
        else:
            print(f"unknown table {name!r}; choices: {', '.join(_TABLES)} ablations",
                  file=sys.stderr)
            return 2
        print()
    return 0


def _load_circuit(path: str):
    text = Path(path).read_text()
    return parse_netlist(text, name=Path(path).stem)


def _cmd_simulate(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.netlist)
    op = DCSolver(circuit).solve()
    print(f"DC operating point of {circuit.name}:")
    for net in sorted(op.voltages):
        print(f"  V({net}) = {op.voltages[net]:.6g} V")
    for comp, state in sorted(op.device_states.items()):
        print(f"  {comp}: {state}")
    return 0


def _parse_probe_tuple(spec: str, imprecision: float):
    net, _, raw = spec.partition("=")
    if not raw:
        raise SystemExit(f"--probe expects NET=VOLTS, got {spec!r}")
    try:
        value = float(raw)
    except ValueError as exc:
        raise SystemExit(f"bad probe {spec!r}: {exc}")
    return (f"V({net})", value, value, imprecision, imprecision)


def _parse_probe(spec: str, imprecision: float) -> Measurement:
    point, m1, m2, alpha, beta = _parse_probe_tuple(spec, imprecision)
    try:
        value = FuzzyInterval(m1, m2, alpha, beta)
    except ValueError as exc:
        raise SystemExit(f"bad probe {spec!r}: {exc}")
    return Measurement(point, value)


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.core.diagnosis import FlamesConfig
    from repro.runtime import RunContext, render_trace

    circuit = _load_circuit(args.netlist)
    engine = Flames(circuit, FlamesConfig(kernel=args.kernel))
    sanitize_report = None
    if args.sanitize == "repair":
        # Sanitise the raw tuples *before* interval construction so
        # non-finite probes are repaired rather than rejected at parse.
        from repro.resilience import sanitize_tuples

        raw = [_parse_probe_tuple(p, args.imprecision) for p in args.probe]
        tuples, sanitize_report = sanitize_tuples(raw)
        measurements = [
            Measurement(point, FuzzyInterval(m1, m2, alpha, beta))
            for point, m1, m2, alpha, beta in tuples
        ]
        if not measurements:
            print("sanitizer dropped every probe: "
                  + "; ".join(a.reason for a in sanitize_report.actions),
                  file=sys.stderr)
            return 2
    else:
        measurements = [_parse_probe(p, args.imprecision) for p in args.probe]
    ctx = None
    if args.deadline is not None or args.trace:
        if args.deadline is not None and args.deadline <= 0:
            raise SystemExit("--deadline must be positive")
        ctx = RunContext.with_timeout(args.deadline, tracing=args.trace)
    result = engine.diagnose(measurements, ctx=ctx)
    refinements = None
    if not result.is_consistent and not result.interrupted and not args.no_refine:
        refinements = KnowledgeBase(circuit).refine(
            result.suspicions, measurements, top_k=5
        )
    if args.json:
        from repro.service.jobs import diagnosis_to_dict

        payload = diagnosis_to_dict(result, refinements)
        payload["circuit"] = circuit.name
        if sanitize_report is not None and sanitize_report.degraded:
            payload["degraded"] = sanitize_report.to_dict()
        if result.trace:
            payload["trace"] = result.trace
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_report(result, refinements, title=f"diagnosis of {circuit.name}"))
        if sanitize_report is not None and sanitize_report.degraded:
            print("\nDEGRADED MODE: some probes were repaired on entry")
            for action in sanitize_report.actions:
                print(f"  {action.point}: {action.action} ({action.reason})")
        if result.interrupted:
            reason = (ctx.stop_reason or "stopped") if ctx else "stopped"
            print(f"\n(partial result: run interrupted — {reason})")
        if result.trace:
            print()
            print(render_trace(result.trace))
    return 0 if result.is_consistent else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.resilience import FaultPlan, FleetSupervisor
    from repro.service import FleetEngine, ManifestError, load_manifest

    try:
        jobs = load_manifest(args.manifest)
    except ManifestError as exc:
        print(f"bad manifest: {exc}", file=sys.stderr)
        return 2
    store = None
    maintenance = None
    if args.store:
        from repro.store import DiagnosisStore, StoreMaintenance

        store = DiagnosisStore(args.store)
        # Batch mode runs upkeep opportunistically: the engine calls
        # maybe_tick() between batches, and the final tick below leaves
        # the WAL checkpointed and retention applied on exit.
        maintenance = StoreMaintenance(store)
    try:
        fault_plan = FaultPlan.from_json(args.faults) if args.faults else None
        engine = FleetEngine(
            workers=args.workers,
            executor=args.executor,
            timeout=args.timeout,
            retries=args.retries,
            cache_size=args.cache_size,
            tracing=args.trace,
            supervisor=FleetSupervisor() if args.supervise else None,
            fault_plan=fault_plan,
            verify_kernel=args.verify_kernel,
            store=store,
            maintenance=maintenance,
        )
    except ValueError as exc:
        if store is not None:
            store.close()
        print(f"bad engine options: {exc}", file=sys.stderr)
        return 2
    try:
        report = engine.run_batch(jobs)
        for _ in range(max(args.repeat - 1, 0)):
            report = engine.run_batch(jobs)
    finally:
        if maintenance is not None:
            maintenance.tick()
        if store is not None:
            store.close()

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if not report.failed else 1

    print(f"fleet of {len(jobs)} units ({engine.executor_kind} x{engine.workers}), "
          f"{report.wall_clock:.2f}s wall-clock")
    for res in report.results:
        tag = " (cached)" if res.cache_hit else ""
        if res.status == "ok":
            if res.is_consistent:
                print(f"  {res.unit}: healthy{tag}")
            else:
                top = ", ".join(f"{c}:{s:.2f}" for c, s in res.candidates()[:4])
                print(f"  {res.unit}: faulty{tag} — {top}")
                modes = res.diagnosis.get("refinements") or []
                if modes:
                    best = modes[0]
                    print(f"      likely mode: {best['component']} "
                          f"{best['mode']} @ {best['degree']:.2f}")
        else:
            reason = res.error.splitlines()[0] if res.error else res.status
            print(f"  {res.unit}: {res.status.upper()} — {reason}")
    if report.rules_learned:
        print(f"experience: {report.rules_learned} rule(s) merged into the shared base")
    cache = report.cache or engine.cache.snapshot()
    tiers = ""
    if cache.get("hits_disk") or (store is not None and cache.get("hits")):
        tiers = (f" [mem {cache.get('hits_mem', 0)}, "
                 f"disk {cache.get('hits_disk', 0)}]")
    print(f"cache: {cache['hits']} hit(s){tiers}, {cache['misses']} miss(es), "
          f"{cache['evictions']} eviction(s), hit rate {cache['hit_rate']:.0%} "
          f"({cache['size']}/{cache['capacity']} slots)")
    print()
    print(engine.telemetry.summary(title="fleet telemetry"))
    return 0 if not report.failed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server.app import main as serve_main

    forwarded = [
        "--host", args.host,
        "--port", str(args.port),
        "--workers", str(args.workers),
        "--queue-size", str(args.queue_size),
        "--cache-size", str(args.cache_size),
        "--timeout", str(args.timeout),
        "--retries", str(args.retries),
        "--max-streams", str(args.max_streams),
        "--heartbeat", str(args.heartbeat),
    ]
    if args.supervise:
        forwarded.append("--supervise")
    if args.faults:
        forwarded.extend(["--faults", args.faults])
    if args.verify_kernel:
        forwarded.append("--verify-kernel")
    if args.store:
        forwarded.extend(["--store", args.store])
        forwarded.extend(["--checkpoint-interval", str(args.checkpoint_interval)])
        forwarded.extend(["--retain-history", str(args.retain_history)])
        forwarded.extend(["--retain-history-rows", str(args.retain_history_rows)])
        forwarded.extend(["--retain-cache", str(args.retain_cache)])
        if args.no_lifecycle:
            forwarded.append("--no-lifecycle")
    return serve_main(forwarded)


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster.gateway import main as cluster_main

    forwarded = [
        "--host", args.host,
        "--port", str(args.port),
        "--replicas", str(args.replicas),
        "--vnodes", str(args.vnodes),
        "--workers", str(args.workers),
        "--queue-size", str(args.queue_size),
        "--cache-size", str(args.cache_size),
        "--timeout", str(args.timeout),
        "--retries", str(args.retries),
        "--poll-interval", str(args.poll_interval),
        "--gossip-interval", str(args.gossip_interval),
    ]
    if args.supervise:
        forwarded.append("--supervise")
    if args.faults:
        forwarded.extend(["--faults", args.faults])
    if args.replica_faults:
        forwarded.extend(["--replica-faults", args.replica_faults])
    if args.store:
        forwarded.extend(["--store", args.store])
        forwarded.extend(["--checkpoint-interval", str(args.checkpoint_interval)])
        forwarded.extend(["--retain-history", str(args.retain_history)])
        forwarded.extend(["--retain-history-rows", str(args.retain_history_rows)])
        forwarded.extend(["--retain-cache", str(args.retain_cache)])
    return cluster_main(forwarded)


def _cmd_tenants(args: argparse.Namespace) -> int:
    from repro.store import DiagnosisStore, build_report

    store = DiagnosisStore(args.store)
    try:
        if args.tenants_command == "create":
            try:
                key = store.provision_tenant(
                    args.tenant,
                    name=args.name,
                    quota_limit=args.quota,
                    quota_interval=args.quota_interval,
                )
            except ValueError as exc:
                print(f"cannot provision tenant: {exc}", file=sys.stderr)
                return 2
            payload = {"tenant_id": args.tenant, "api_key": key}
            if args.json:
                # Machine-readable: one compact line on stdout, nothing else.
                print(json.dumps(payload, sort_keys=True))
                return 0
            print(json.dumps(payload, indent=2, sort_keys=True))
            print("save the api_key now: only its digest is stored",
                  file=sys.stderr)
            return 0
        if args.tenants_command == "rotate":
            try:
                key = store.rotate_key(args.tenant, overlap=args.overlap)
            except ValueError as exc:
                print(f"cannot rotate key: {exc}", file=sys.stderr)
                return 2
            payload = {
                "tenant_id": args.tenant,
                "api_key": key,
                "overlap_seconds": args.overlap,
            }
            if args.json:
                print(json.dumps(payload, sort_keys=True))
                return 0
            print(json.dumps(payload, indent=2, sort_keys=True))
            print("save the api_key now: only its digest is stored",
                  file=sys.stderr)
            return 0
        if args.tenants_command == "revoke":
            revoked = store.revoke_keys(args.tenant)
            print(json.dumps(
                {"tenant_id": args.tenant, "revoked": revoked},
                sort_keys=True,
            ))
            return 0 if revoked else 2
        if args.tenants_command == "list":
            tenants = [t.to_dict() for t in store.list_tenants()]
            print(json.dumps({"tenants": tenants}, indent=2, sort_keys=True))
            return 0
        report = build_report(store, args.tenant, limit=args.limit)
        if report is None:
            print(f"no tenant {args.tenant!r}", file=sys.stderr)
            return 2
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    finally:
        store.close()


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import DiagnosisStore, StoreError

    store = DiagnosisStore(args.store)
    try:
        if args.store_command == "backup":
            try:
                result = store.backup(args.dest)
            except (StoreError, ValueError, OSError) as exc:
                print(f"backup failed: {exc}", file=sys.stderr)
                return 2
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0
        if args.store_command == "scrub":
            result = store.scrub()
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0 if result["integrity"] == "ok" else 1
        # status
        snap = store.snapshot()
        snap["integrity"] = store.integrity_check()
        print(json.dumps(snap, indent=2, sort_keys=True))
        return 0 if snap["integrity"] == "ok" else 1
    finally:
        store.close()


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.server.http import HttpError
    from repro.server.stream import StreamSpec
    from repro.service.telemetry import Telemetry

    query = {
        "circuit": args.circuit,
        "size": str(args.size),
        "nets": args.nets,
        "fault": args.fault,
        "fault_at": str(args.fault_at),
        "duration": str(args.duration),
        "dt": str(args.dt),
        "imprecision": str(args.imprecision),
        "noise": str(args.noise),
        "seed": str(args.seed),
        "kernel": args.kernel,
        "threshold": str(args.threshold),
        "hysteresis": str(args.hysteresis),
        "epsilon": str(args.epsilon),
        "top": str(args.top),
        "tick_deadline": str(args.tick_deadline or 0),
    }
    try:
        spec = StreamSpec.from_query(query)
    except HttpError as exc:
        print(f"bad watch options: {exc.message}", file=sys.stderr)
        return 2
    telemetry = Telemetry()
    session = spec.build_session(telemetry)
    assert session is not None
    if not args.json:
        fault = spec.fault.describe() if spec.fault else "none"
        print(f"watching {spec.golden_circuit().name} "
              f"({spec.duration:g}s @ dt={spec.dt:g}, fault: {fault}"
              + (f" at t={spec.fault_at:g}s" if spec.fault else "") + ")")
    saw_fault = False
    for update in session.run():
        saw_fault = saw_fault or not update.consistent
        if args.json:
            print(json.dumps(update.to_dict(), sort_keys=True), flush=True)
            continue
        kind = "incremental" if update.incremental else "cold"
        line = (f"[{update.seq:3d}] t={update.t:.4g}s {kind} tick "
                f"{update.tick_ms:.0f}ms")
        if update.consistent:
            line += " — consistent (unit looks healthy)"
        else:
            top = " ".join(f"{c}:{s:.2f}" for c, s in update.ranking)
            line += f" — suspects: {top}"
            if update.candidates:
                shown = " ".join("+".join(c) for c in update.candidates[:3])
                line += f"  [candidates: {shown}]"
        if update.drifted:
            line += f"  [drift: {','.join(update.drifted)}]"
        if update.interrupted:
            line += "  (partial: tick deadline hit)"
        print(line, flush=True)
    if not args.json:
        print()
        print(telemetry.summary(title="stream telemetry"))
    return 1 if saw_fault else 0


def _parse_classes(raw: str) -> Optional[List[str]]:
    names = [c.strip() for c in raw.split(",") if c.strip()]
    return names or None


def _cmd_corpus_generate(args: argparse.Namespace) -> int:
    from repro.corpus import generate_corpus

    try:
        manifest = generate_corpus(args.seed, args.per_class, _parse_classes(args.classes))
    except ValueError as exc:
        print(f"bad corpus recipe: {exc}", file=sys.stderr)
        return 2
    text = manifest.to_json()
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {len(manifest)} scenarios "
              f"({len(manifest.classes)} classes, seed {manifest.seed}) to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _corpus_table(report) -> str:
    lines = []
    stats = report.stats()
    for kernel in sorted(stats):
        lines.append(f"kernel {kernel}:")
        lines.append(f"  {'class':<20}{'n':>6}{'top1':>8}{'top3':>8}{'top5':>8}"
                     f"{'mrank':>8}{'lowdeg':>8}{'p50ms':>9}{'p95ms':>9}")
        classes = stats[kernel]
        ordered = sorted(c for c in classes if c != "overall") + ["overall"]
        for name in ordered:
            acc = classes[name].accuracy_dict()
            lat = classes[name].latency_dict()
            mean_rank = acc["mean_rank"]
            lines.append(
                f"  {name:<20}{acc['n']:>6}"
                f"{acc.get('top1', 0.0):>8.3f}{acc.get('top3', 0.0):>8.3f}"
                f"{acc.get('top5', 0.0):>8.3f}"
                f"{(f'{mean_rank:.2f}' if mean_rank is not None else '-'):>8}"
                f"{acc['low_degree_rate']:>8.3f}"
                f"{lat['p50_ms']:>9.1f}{lat['p95_ms']:>9.1f}"
            )
    return "\n".join(lines)


def _cmd_corpus_run(args: argparse.Namespace) -> int:
    import time

    from repro.corpus import CorpusManifest, check_floor, generate_corpus, run_corpus

    if args.manifest:
        try:
            manifest = CorpusManifest.from_json(Path(args.manifest).read_text())
        except (OSError, ValueError, KeyError) as exc:
            print(f"bad corpus manifest: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            manifest = generate_corpus(
                args.seed, args.per_class, _parse_classes(args.classes)
            )
        except ValueError as exc:
            print(f"bad corpus recipe: {exc}", file=sys.stderr)
            return 2
    kernels = tuple(args.kernel) if args.kernel else ("reference", "fast")
    try:
        top_k = tuple(int(k) for k in args.top_k.split(",") if k.strip())
    except ValueError as exc:
        print(f"bad --top-k: {exc}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    report = run_corpus(
        manifest,
        kernels=kernels,
        workers=args.workers,
        executor=args.executor,
        top_k=top_k or (1, 3, 5),
    )
    wall = time.perf_counter() - started
    if args.out:
        Path(args.out).write_text(report.to_json(include_latency=args.latency))
    breaches = []
    if args.floor:
        try:
            floor = json.loads(Path(args.floor).read_text())
        except (OSError, ValueError) as exc:
            print(f"bad floor file: {exc}", file=sys.stderr)
            return 2
        breaches = check_floor(report, floor)
    if args.json:
        sys.stdout.write(report.to_json(include_latency=args.latency))
    else:
        print(f"corpus of {len(manifest)} scenarios "
              f"(seed {manifest.seed}, {len(manifest.classes)} classes) "
              f"on {'+'.join(kernels)} — {wall:.1f}s wall-clock")
        print(_corpus_table(report))
    for breach in breaches:
        print(f"FLOOR BREACH: {breach}", file=sys.stderr)
    if args.floor and not breaches:
        print("accuracy floor holds", file=sys.stderr)
    return 1 if breaches else 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.circuit.faults import Fault, FaultKind, apply_fault
    from repro.circuit.library import three_stage_amplifier
    from repro.circuit.measurements import probe_all

    golden = three_stage_amplifier()
    fault = Fault(FaultKind.SHORT, "R2")
    print(f"demo: {golden.name} with an injected '{fault.describe()}'\n")
    op = DCSolver(apply_fault(golden, fault)).solve()
    measurements = probe_all(op, ["vs", "v2", "v1"], imprecision=0.02)
    engine = Flames(golden)
    result = engine.diagnose(measurements)
    refinements = KnowledgeBase(golden).refine(result.suspicions, measurements)
    print(render_report(result, refinements, title="FLAMES demo"))
    return 0


def _add_lifecycle_args(parser: argparse.ArgumentParser) -> None:
    """Store-lifecycle tuning flags shared by serve and cluster modes."""
    parser.add_argument(
        "--checkpoint-interval", type=float, default=60.0,
        help="seconds between WAL checkpoint/retention ticks (default 60)",
    )
    parser.add_argument(
        "--retain-history", type=float, default=30.0,
        help="days of history to keep, 0 = forever (default 30)",
    )
    parser.add_argument(
        "--retain-history-rows", type=int, default=100_000,
        help="max history rows to keep, 0 = unlimited (default 100000)",
    )
    parser.add_argument(
        "--retain-cache", type=float, default=0.0,
        help="days of cache rows to keep, 0 = forever (default 0)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FLAMES — fuzzy-logic ATMS analog diagnosis (DATE 1996 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("names", nargs="*", help="which tables (default: all)")
    tables.set_defaults(func=_cmd_tables)

    simulate = sub.add_parser("simulate", help="DC operating point of a netlist")
    simulate.add_argument("netlist", help="SPICE-subset netlist file")
    simulate.set_defaults(func=_cmd_simulate)

    diagnose = sub.add_parser("diagnose", help="diagnose a unit from bench readings")
    diagnose.add_argument("netlist", help="golden design (SPICE-subset netlist)")
    diagnose.add_argument(
        "--probe",
        action="append",
        default=[],
        required=True,
        help="measured node voltage, NET=VOLTS (repeatable)",
    )
    diagnose.add_argument(
        "--imprecision",
        type=float,
        default=0.02,
        help="instrument imprecision in volts (default 0.02)",
    )
    diagnose.add_argument(
        "--no-refine", action="store_true", help="skip fault-mode refinement"
    )
    diagnose.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON result instead of the text report",
    )
    diagnose.add_argument(
        "--kernel",
        choices=["reference", "fast"],
        default="reference",
        help="implementation substrate: bitmask/memoized fast kernel or the "
        "reference semantics (identical results; default reference)",
    )
    diagnose.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds; on expiry the run winds down "
        "cooperatively and reports a partial result",
    )
    diagnose.add_argument(
        "--trace",
        action="store_true",
        help="collect per-stage spans and print the trace tree (embedded "
        "under 'trace' with --json)",
    )
    diagnose.add_argument(
        "--sanitize",
        choices=["strict", "repair"],
        default="strict",
        help="measurement policy: strict rejects malformed probes (default); "
        "repair drops/widens them and the diagnosis runs degraded (see "
        "README 'Resilience')",
    )
    diagnose.set_defaults(func=_cmd_diagnose)

    batch = sub.add_parser(
        "batch", help="fleet mode: run a JSON manifest of diagnosis jobs"
    )
    batch.add_argument("manifest", help="JSON job manifest (see README 'Fleet mode')")
    batch.add_argument(
        "--workers", type=int, default=4, help="worker pool width (default 4)"
    )
    batch.add_argument(
        "--executor",
        choices=["process", "thread", "serial"],
        default="process",
        help="pool flavour (default process)",
    )
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    batch.add_argument(
        "--retries", type=int, default=1, help="extra attempts for crashed jobs (default 1)"
    )
    batch.add_argument(
        "--cache-size", type=int, default=256, help="result-cache capacity (default 256)"
    )
    batch.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run the manifest N times against the same warm cache (default 1)",
    )
    batch.add_argument(
        "--trace",
        action="store_true",
        help="collect engine span trees per job (folded into the telemetry "
        "digest as engine.* phases; on each result with --json)",
    )
    batch.add_argument(
        "--json",
        action="store_true",
        help="emit the full batch report as JSON (results + telemetry)",
    )
    batch.add_argument(
        "--supervise",
        action="store_true",
        help="engage the fleet supervisor: poison-job quarantine, worker "
        "health eviction and the kernel circuit breaker (see README "
        "'Resilience')",
    )
    batch.add_argument(
        "--faults",
        default="",
        help="JSON fault plan armed across the engine and its workers "
        "(deterministic chaos testing; see README 'Resilience')",
    )
    batch.add_argument(
        "--verify-kernel",
        action="store_true",
        help="differentially check every fast-kernel run against the "
        "reference engine (expensive; chaos/soak runs only)",
    )
    batch.add_argument(
        "--store",
        default="",
        help="durable sqlite store: results and learned experience "
        "survive restarts (see README 'Persistence & tenants')",
    )
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve", help="server mode: diagnosis over HTTP/JSON from a warm engine"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port; 0 picks an ephemeral port"
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="concurrent diagnosis slots (default 4)"
    )
    serve.add_argument(
        "--queue-size", type=int, default=64,
        help="requests allowed to wait for a slot before 503s (default 64)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=1024, help="result-cache capacity (default 1024)"
    )
    serve.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request budget in seconds (default 30)",
    )
    serve.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts for crashed jobs (default 1)",
    )
    serve.add_argument(
        "--max-streams", type=int, default=4,
        help="concurrent /v1/stream SSE connections (default 4)",
    )
    serve.add_argument(
        "--heartbeat", type=float, default=5.0,
        help="SSE keep-alive cadence in seconds (default 5)",
    )
    serve.add_argument(
        "--supervise", action="store_true",
        help="engage the fleet supervisor (quarantine, health, breaker)",
    )
    serve.add_argument(
        "--faults", default="",
        help="JSON fault plan armed server-wide (chaos testing only)",
    )
    serve.add_argument(
        "--verify-kernel", action="store_true",
        help="differentially check every fast-kernel run (chaos/soak only)",
    )
    serve.add_argument(
        "--store", default="",
        help="durable sqlite store: caches, experience and tenants "
        "survive restarts (see README 'Persistence & tenants')",
    )
    _add_lifecycle_args(serve)
    serve.add_argument(
        "--no-lifecycle", action="store_true",
        help="disable the store maintenance loop (another process owns it)",
    )
    serve.set_defaults(func=_cmd_serve)

    cluster = sub.add_parser(
        "cluster",
        help="cluster mode: a sharded replica fleet behind one gateway",
    )
    cluster.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    cluster.add_argument(
        "--port", type=int, default=8090, help="gateway port; 0 picks an ephemeral port"
    )
    cluster.add_argument(
        "--replicas", type=int, default=2,
        help="server subprocesses to run (default 2)",
    )
    cluster.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per replica on the hash ring (default 64)",
    )
    cluster.add_argument(
        "--workers", type=int, default=2,
        help="diagnosis slots per replica (default 2)",
    )
    cluster.add_argument(
        "--queue-size", type=int, default=64,
        help="admission queue depth per replica (default 64)",
    )
    cluster.add_argument(
        "--cache-size", type=int, default=1024,
        help="result-cache capacity per replica (default 1024)",
    )
    cluster.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request budget in seconds (default 30)",
    )
    cluster.add_argument(
        "--retries", type=int, default=1,
        help="per-replica crashed-job retries (default 1)",
    )
    cluster.add_argument(
        "--poll-interval", type=float, default=1.0,
        help="replica health-poll period in seconds (default 1)",
    )
    cluster.add_argument(
        "--gossip-interval", type=float, default=2.0,
        help="experience gossip period in seconds (default 2)",
    )
    cluster.add_argument(
        "--supervise", action="store_true",
        help="engage the fleet supervisor inside every replica",
    )
    cluster.add_argument(
        "--faults", default="",
        help="JSON fault plan armed in the gateway (cluster.* chaos points)",
    )
    cluster.add_argument(
        "--replica-faults", default="",
        help="JSON fault plan forwarded to every replica subprocess",
    )
    cluster.add_argument(
        "--store", default="",
        help="durable sqlite store shared by every replica; the gateway "
        "seeds its gossip ledger from it at boot",
    )
    _add_lifecycle_args(cluster)
    cluster.set_defaults(func=_cmd_cluster)

    tenants = sub.add_parser(
        "tenants", help="administer tenants in a durable store"
    )
    tenants_sub = tenants.add_subparsers(dest="tenants_command", required=True)

    tenants_create = tenants_sub.add_parser(
        "create", help="provision a tenant and print its API key (once)"
    )
    tenants_create.add_argument("tenant", help="tenant id (no ':', '/' or whitespace)")
    tenants_create.add_argument("--store", required=True, help="durable store file")
    tenants_create.add_argument(
        "--name", default="", help="display name (default: the tenant id)"
    )
    tenants_create.add_argument(
        "--quota", type=int, default=0,
        help="requests allowed per window, 0 = unlimited (default 0)",
    )
    tenants_create.add_argument(
        "--quota-interval", dest="quota_interval", type=float, default=60.0,
        help="quota window in seconds (default 60)",
    )
    tenants_create.add_argument(
        "--json", action="store_true",
        help="emit one compact JSON line on stdout (for provisioning scripts)",
    )
    tenants_create.set_defaults(func=_cmd_tenants)

    tenants_rotate = tenants_sub.add_parser(
        "rotate", help="issue a fresh API key and retire the current one"
    )
    tenants_rotate.add_argument("tenant", help="tenant id")
    tenants_rotate.add_argument("--store", required=True, help="durable store file")
    tenants_rotate.add_argument(
        "--overlap", type=float, default=0.0,
        help="seconds the old key stays valid after rotation (default 0)",
    )
    tenants_rotate.add_argument(
        "--json", action="store_true",
        help="emit one compact JSON line on stdout (for provisioning scripts)",
    )
    tenants_rotate.set_defaults(func=_cmd_tenants)

    tenants_revoke = tenants_sub.add_parser(
        "revoke", help="revoke every API key a tenant holds (terminal)"
    )
    tenants_revoke.add_argument("tenant", help="tenant id")
    tenants_revoke.add_argument("--store", required=True, help="durable store file")
    tenants_revoke.set_defaults(func=_cmd_tenants)

    tenants_list = tenants_sub.add_parser(
        "list", help="list provisioned tenants (never their keys)"
    )
    tenants_list.add_argument("--store", required=True, help="durable store file")
    tenants_list.set_defaults(func=_cmd_tenants)

    tenants_report = tenants_sub.add_parser(
        "report", help="a tenant's fleet-health report from its history"
    )
    tenants_report.add_argument("tenant", help="tenant id")
    tenants_report.add_argument("--store", required=True, help="durable store file")
    tenants_report.add_argument(
        "--limit", type=int, default=0,
        help="only the most recent N history rows (default: all)",
    )
    tenants_report.set_defaults(func=_cmd_tenants)

    store_cmd = sub.add_parser(
        "store", help="operate on a durable store: backup, scrub, status"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)

    store_backup = store_sub.add_parser(
        "backup", help="online backup to a new file (safe under live writers)"
    )
    store_backup.add_argument("dest", help="destination file (not the live store)")
    store_backup.add_argument("--store", required=True, help="durable store file")
    store_backup.set_defaults(func=_cmd_store)

    store_scrub = store_sub.add_parser(
        "scrub", help="re-verify cache seals and run integrity_check; "
        "purge corrupt rows",
    )
    store_scrub.add_argument("--store", required=True, help="durable store file")
    store_scrub.set_defaults(func=_cmd_store)

    store_status = store_sub.add_parser(
        "status", help="row counts, WAL size and integrity of a store file"
    )
    store_status.add_argument("--store", required=True, help="durable store file")
    store_status.set_defaults(func=_cmd_store)

    watch = sub.add_parser(
        "watch",
        help="streaming mode: watch a live-simulated unit and re-diagnose "
        "incrementally as it drifts",
    )
    watch.add_argument(
        "--circuit", choices=["ladder", "rc"], default="ladder",
        help="unit family: resistive ladder or dynamic RC low-pass (default ladder)",
    )
    watch.add_argument(
        "--size", type=int, default=6,
        help="ladder sections / RC stages (default 6)",
    )
    watch.add_argument(
        "--nets", default="",
        help="comma-separated nets to probe (default: every probe net)",
    )
    watch.add_argument(
        "--fault", default="",
        help="inject mid-stream: kind:component[:value], e.g. short:Rp3 "
        "or param:Rs2:30e3 (default: none — a healthy run)",
    )
    watch.add_argument(
        "--fault-at", dest="fault_at", type=float, default=0.0,
        help="stream time at which the fault appears (default 0)",
    )
    watch.add_argument(
        "--duration", type=float, default=0.01,
        help="how long to observe, in simulated seconds (default 0.01)",
    )
    watch.add_argument(
        "--dt", type=float, default=1e-3, help="sample period (default 1e-3)"
    )
    watch.add_argument(
        "--imprecision", type=float, default=0.05,
        help="instrument imprecision in volts (default 0.05)",
    )
    watch.add_argument(
        "--noise", type=float, default=0.0,
        help="Gaussian instrument noise sigma in volts (default 0)",
    )
    watch.add_argument(
        "--seed", type=int, default=0, help="noise RNG seed (default 0)"
    )
    watch.add_argument(
        "--kernel", choices=["reference", "fast"], default="fast",
        help="engine substrate (default fast — streaming is latency-bound)",
    )
    watch.add_argument(
        "--threshold", type=float, default=0.5,
        help="EWMA discrepancy level that triggers a re-diagnosis (default 0.5)",
    )
    watch.add_argument(
        "--hysteresis", type=float, default=0.2,
        help="re-arm margin below the threshold (default 0.2)",
    )
    watch.add_argument(
        "--epsilon", type=float, default=1e-3,
        help="volts a reading must move to dirty its point (default 1e-3)",
    )
    watch.add_argument(
        "--top", type=int, default=5,
        help="ranked components shown per update (default 5)",
    )
    watch.add_argument(
        "--tick-deadline", dest="tick_deadline", type=float, default=None,
        help="per-re-diagnosis budget in seconds (default: unbounded)",
    )
    watch.add_argument(
        "--json", action="store_true",
        help="one JSON object per update (the SSE data schema) instead of text",
    )
    watch.set_defaults(func=_cmd_watch)

    corpus = sub.add_parser(
        "corpus",
        help="corpus mode: seeded scenario generation + accuracy regression",
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)

    def _recipe_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--seed", type=int, default=7,
            help="corpus seed; every scenario is deterministic from "
            "(seed, class) (default 7)",
        )
        p.add_argument(
            "--per-class", dest="per_class", type=int, default=170,
            help="scenarios per class (default 170 — ~1000 across the "
            "six classes)",
        )
        p.add_argument(
            "--classes", default="",
            help="comma-separated scenario classes (default: all six; see "
            "README 'Corpus mode')",
        )

    corpus_generate = corpus_sub.add_parser(
        "generate", help="generate a scenario manifest (canonical JSON)"
    )
    _recipe_options(corpus_generate)
    corpus_generate.add_argument(
        "--out", default="", help="write the manifest here (default stdout)"
    )
    corpus_generate.set_defaults(func=_cmd_corpus_generate)

    corpus_run = corpus_sub.add_parser(
        "run", help="execute a corpus and report accuracy + latency per class"
    )
    _recipe_options(corpus_run)
    corpus_run.add_argument(
        "--manifest", default="",
        help="run this manifest file instead of generating from the recipe",
    )
    corpus_run.add_argument(
        "--kernel", action="append", choices=["reference", "fast"], default=None,
        help="kernel(s) to score, repeatable (default: both)",
    )
    corpus_run.add_argument(
        "--workers", type=int, default=4, help="worker pool width (default 4)"
    )
    corpus_run.add_argument(
        "--executor", choices=["process", "thread", "serial"], default="process",
        help="pool flavour (default process)",
    )
    corpus_run.add_argument(
        "--top-k", dest="top_k", default="1,3,5",
        help="hit@k cut-offs, comma-separated (default 1,3,5)",
    )
    corpus_run.add_argument(
        "--out", default="",
        help="write the machine-readable report here (accuracy only, "
        "byte-stable across runs unless --latency)",
    )
    corpus_run.add_argument(
        "--floor", default="",
        help="accuracy floor JSON to enforce (e.g. benchmarks/"
        "corpus_floor.json); breaches exit 1",
    )
    corpus_run.add_argument(
        "--latency", action="store_true",
        help="include latency percentiles in the JSON report (breaks "
        "byte-stability; the text table always shows them)",
    )
    corpus_run.add_argument(
        "--json", action="store_true",
        help="print the machine-readable report instead of the text table",
    )
    corpus_run.set_defaults(func=_cmd_corpus_run)

    demo = sub.add_parser("demo", help="diagnose a shorted resistor on the paper's amplifier")
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
