"""Seeded scenario-corpus generation.

Every scenario is deterministic from the ``(seed, scenario-class)``
pair: each class draws from its own ``random.Random(f"{seed}/{class}")``
stream, so adding, removing or re-ordering *other* classes never
changes what a class generates, and two runs with the same recipe are
byte-identical (string seeding is platform-stable).

Scenario classes
----------------

``single-hard``
    One catastrophic defect (open/short) on one component.
``single-drift``
    One parametric defect: the component's main parameter drifts well
    outside its tolerance band (3-10x), in either direction.
``multi-fault``
    Two simultaneous independent defects on distinct components — the
    paper's multifault experiments at corpus scale.
``intermittent``
    A hard defect present in only a subset of the bench readings (the
    rest see the golden unit).  The fuzzy-ATMS prediction (Fringuelli
    et al.): contradictory evidence surfaces as *low-degree* nogoods —
    weighted nogoods whose inconsistency degree stays below the hard
    1.0 a persistent defect produces.
``tempco-drift``
    A temperature sweep: every component drifts by its temperature
    coefficient times the sweep delta (benign, ~100 ppm/K), except one
    culprit whose anomalous tempco carries it far outside tolerance —
    the proactive-maintenance "degradation over time" workload.
``tolerance-stackup``
    Every component drifts *within* (or marginally beyond) its
    tolerance band and there is no defect at all.  The right answer is
    "no single culprit": the engine must not indict any component with
    certainty.

Each class sweeps all five topology families (ladder, amplifier chain,
divider tree, resistive mesh, bridge cascade) across a size sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.circuit.components import Amplifier, Resistor
from repro.circuit.faults import Fault, FaultKind, apply_faults
from repro.circuit.generators import (
    amplifier_chain,
    bridge_cascade,
    divider_tree,
    mesh_grid,
    resistor_ladder,
)
from repro.circuit.measurements import Measurement, probe
from repro.circuit.netlist import Circuit
from repro.circuit.simulate import DCSolver, OperatingPoint, SimulationError
from repro.circuit.spice import write_netlist
from repro.corpus.metrics import CERTAIN
from repro.corpus.scenarios import CorpusManifest, Scenario
from repro.fuzzy import FuzzyInterval

__all__ = ["CLASSES", "FAMILIES", "TopologyFamily", "generate_corpus", "class_rng"]

#: Instrument imprecision (volts) used for every corpus reading.
IMPRECISION = 0.02

#: Relative drift band (in multiples of the part tolerance) for
#: single-drift defects: far enough outside tolerance to be observable.
DRIFT_BAND = (3.0, 10.0)

#: Benign vs anomalous temperature coefficients (per kelvin).
TEMPCO_BENIGN = (50e-6, 150e-6)
TEMPCO_BAD = (2500e-6, 6000e-6)

#: Temperature sweep deltas (kelvin above the 25C datasheet point).
TEMPCO_DELTAS = (40.0, 60.0, 80.0)


@dataclass(frozen=True)
class TopologyFamily:
    """One generated-netlist family plus its probe/fault conventions."""

    name: str
    sizes: Tuple[object, ...]
    build: Callable[[object, random.Random], Circuit]
    probe_nets: Callable[[Circuit], List[str]]

    def faultable(self, circuit: Circuit) -> List[str]:
        """Components a defect may strike (passives and gain blocks)."""
        return [
            c.name
            for c in circuit.components
            if isinstance(c, (Resistor, Amplifier))
        ]


def _nets_except_source(circuit: Circuit, driven: str) -> List[str]:
    return [n.name for n in circuit.non_ground_nets if n.name != driven]


FAMILIES: Tuple[TopologyFamily, ...] = (
    TopologyFamily(
        name="ladder",
        sizes=(3, 4, 5, 6),
        build=lambda size, rng: resistor_ladder(int(size), rng=rng),
        probe_nets=lambda c: _nets_except_source(c, "in"),
    ),
    TopologyFamily(
        name="amp-chain",
        sizes=(3, 5, 7),
        build=lambda size, rng: amplifier_chain(int(size), rng=rng),
        probe_nets=lambda c: _nets_except_source(c, "s0"),
    ),
    TopologyFamily(
        name="divider-tree",
        sizes=(2, 3),
        build=lambda size, rng: divider_tree(int(size), rng=rng),
        probe_nets=lambda c: _nets_except_source(c, "t"),
    ),
    TopologyFamily(
        name="mesh",
        sizes=((2, 2), (2, 3), (3, 3)),
        build=lambda size, rng: mesh_grid(size[0], size[1], rng=rng),
        probe_nets=lambda c: _nets_except_source(c, "m0c0"),
    ),
    TopologyFamily(
        name="bridge",
        sizes=(1, 2, 3),
        build=lambda size, rng: bridge_cascade(int(size), rng=rng),
        probe_nets=lambda c: _nets_except_source(c, "b0"),
    ),
)

CLASSES: Tuple[str, ...] = (
    "single-hard",
    "single-drift",
    "multi-fault",
    "intermittent",
    "tempco-drift",
    "tolerance-stackup",
)


def class_rng(seed: int, scenario_class: str) -> random.Random:
    """The deterministic random stream of one ``(seed, class)`` pair."""
    return random.Random(f"{seed}/{scenario_class}")


# ----------------------------------------------------------------------
# Building blocks
# ----------------------------------------------------------------------
def _pick_unit(rng: random.Random, index: int) -> Tuple[TopologyFamily, object, Circuit]:
    """Family round-robin + size sweep + seeded component values."""
    family = FAMILIES[index % len(FAMILIES)]
    size = family.sizes[(index // len(FAMILIES)) % len(family.sizes)]
    golden = family.build(size, rng)
    return family, size, golden


def _solve(circuit: Circuit) -> OperatingPoint:
    return DCSolver(circuit).solve()


def _readings(
    op: OperatingPoint, nets: Sequence[str]
) -> Tuple[Tuple[str, float, float, float, float], ...]:
    out = []
    for net in nets:
        m = probe(op, net, IMPRECISION)
        out.append((m.point, m.value.m1, m.value.m2, m.value.alpha, m.value.beta))
    return tuple(out)


def _hard_fault(rng: random.Random, circuit: Circuit, component: str) -> Fault:
    # For a gain block OPEN means stuck-at-zero and SHORT a unity
    # pass-through; for a resistor the usual extreme resistances.
    return Fault(rng.choice((FaultKind.OPEN, FaultKind.SHORT)), component)


def _drift_fault(rng: random.Random, circuit: Circuit, component: str) -> Fault:
    comp = circuit.component(component)
    tolerance = comp.tolerance if comp.tolerance > 0 else 0.05
    magnitude = rng.uniform(*DRIFT_BAND) * tolerance
    sign = rng.choice((-1.0, 1.0))
    # A -100% drift would zero the parameter; cap the low side.
    fraction = max(sign * magnitude, -0.8)
    return Fault(FaultKind.DRIFT, component, value=fraction)


# ----------------------------------------------------------------------
# Scenario-class generators.  Each returns (measurements, expected,
# faults, metadata) for one scenario, or raises SimulationError when the
# drawn unit cannot be solved (the driver resamples).
# ----------------------------------------------------------------------
def _gen_single_hard(rng, family, golden, nets, index):
    fault = _hard_fault(rng, golden, rng.choice(family.faultable(golden)))
    op = _solve(apply_faults(golden, [fault]))
    return _readings(op, nets), (fault.component,), (fault,), ()


def _gen_single_drift(rng, family, golden, nets, index):
    fault = _drift_fault(rng, golden, rng.choice(family.faultable(golden)))
    op = _solve(apply_faults(golden, [fault]))
    return _readings(op, nets), (fault.component,), (fault,), ()


def _gen_multi_fault(rng, family, golden, nets, index):
    names = family.faultable(golden)
    if len(names) < 2:
        raise SimulationError("family too small for a multi-fault scenario")
    first, second = rng.sample(names, 2)
    faults = []
    for component in (first, second):
        maker = rng.choice((_hard_fault, _drift_fault))
        faults.append(maker(rng, golden, component))
    op = _solve(apply_faults(golden, faults))
    expected = tuple(sorted(f.component for f in faults))
    return _readings(op, nets), expected, tuple(faults), ()


def _blend_reading(
    rng: random.Random, net: str, vg: float, vf: float
) -> Tuple[str, float, float, float, float]:
    """A flickering defect integrated by the instrument.

    The reading's flat core sits on the faulty value, but its fuzzy
    fringe trails all the way back past the golden value: the meter
    mostly saw the defect, with a tail of healthy readings.  Against the
    golden prediction this gives partial possibility and partial area
    overlap, so the conflict engine records a weighted nogood with
    degree strictly inside (0, 1) — the paper's low-degree signature of
    intermittency — instead of the hard 1.0 a persistent defect pins.
    """
    gap = abs(vf - vg)
    reach = gap + rng.uniform(0.2, 0.5) * gap + IMPRECISION
    alpha, beta = (reach, IMPRECISION) if vf >= vg else (IMPRECISION, reach)
    return (f"V({net})", vf - IMPRECISION, vf + IMPRECISION, alpha, beta)


def _verify_intermittent(golden: Circuit, readings, culprit: str) -> None:
    """Resample guard: the scenario must show the intermittent signature.

    Runs the reference engine once and demands (a) a partial —
    low-degree — nogood and (b) the culprit among the suspects.  Drawn
    units whose predictions are too wide (deep tolerance stacks swallow
    the blend) get rejected and the driver resamples deterministically.
    """
    from repro.core.diagnosis import Flames, FlamesConfig

    measurements = [
        Measurement(point, FuzzyInterval(m1, m2, alpha, beta))
        for point, m1, m2, alpha, beta in readings
    ]
    result = Flames(golden, FlamesConfig()).diagnose(measurements)
    if not any(1e-6 < ng.degree < CERTAIN for ng in result.nogoods):
        raise SimulationError("no low-degree nogood surfaced")
    if culprit not in dict(result.ranked_components()):
        raise SimulationError("culprit not among the suspects")


def _gen_intermittent(rng, family, golden, nets, index):
    base = _hard_fault(rng, golden, rng.choice(family.faultable(golden)))
    fault = Fault(FaultKind.INTERMITTENT, base.component, base=base)
    op_faulty = _solve(apply_faults(golden, [fault]))
    op_golden = _solve(golden)
    # Probes where the defect moves the reading beyond instrument fuzz.
    observable = [
        net
        for net in nets
        if abs(op_faulty.voltage(net) - op_golden.voltage(net)) > 4 * IMPRECISION
    ]
    if not observable:
        raise SimulationError("intermittent defect invisible at every probe")
    present = sorted(net for net in observable if rng.random() < 0.6)
    if not present:
        present = [observable[rng.randrange(len(observable))]]
    chosen = set(present)
    readings = []
    for net in nets:
        if net in chosen:
            vg, vf = op_golden.voltage(net), op_faulty.voltage(net)
            readings.append(_blend_reading(rng, net, vg, vf))
        else:
            m = probe(op_golden, net, IMPRECISION)
            readings.append(
                (m.point, m.value.m1, m.value.m2, m.value.alpha, m.value.beta)
            )
    _verify_intermittent(golden, readings, base.component)
    metadata = (("present", present),)
    return tuple(readings), (base.component,), (fault,), metadata


def _gen_tempco_drift(rng, family, golden, nets, index):
    names = family.faultable(golden)
    culprit = rng.choice(names)
    delta_t = rng.choice(TEMPCO_DELTAS)
    sign = rng.choice((-1.0, 1.0))
    drifts = []
    culprit_tempco = 0.0
    for name in names:
        if name == culprit:
            tempco = rng.uniform(*TEMPCO_BAD)
            culprit_tempco = tempco
        else:
            tempco = rng.uniform(*TEMPCO_BENIGN)
        drifts.append(Fault(FaultKind.DRIFT, name, value=sign * tempco * delta_t))
    op = _solve(apply_faults(golden, drifts))
    fault = Fault(FaultKind.DRIFT, culprit, value=sign * culprit_tempco * delta_t)
    metadata = (("delta_t", delta_t), ("tempco", culprit_tempco))
    return _readings(op, nets), (culprit,), (fault,), metadata


def _gen_tolerance_stackup(rng, family, golden, nets, index):
    drifts = []
    for name in family.faultable(golden):
        comp = golden.component(name)
        tolerance = comp.tolerance if comp.tolerance > 0 else 0.05
        fraction = rng.uniform(-1.0, 1.0) * tolerance * rng.uniform(0.5, 1.2)
        drifts.append(Fault(FaultKind.DRIFT, name, value=fraction))
    op = _solve(apply_faults(golden, drifts))
    # No defect: the drift is tolerance noise, so expected and faults
    # stay empty — the correct diagnosis indicts nobody with certainty.
    return _readings(op, nets), (), (), ()


_GENERATORS = {
    "single-hard": _gen_single_hard,
    "single-drift": _gen_single_drift,
    "multi-fault": _gen_multi_fault,
    "intermittent": _gen_intermittent,
    "tempco-drift": _gen_tempco_drift,
    "tolerance-stackup": _gen_tolerance_stackup,
}

#: Resample budget per scenario before giving up on a class.
_MAX_ATTEMPTS = 16


def generate_corpus(
    seed: int,
    per_class: int,
    classes: Optional[Sequence[str]] = None,
) -> CorpusManifest:
    """Generate ``per_class`` scenarios for every requested class.

    Deterministic: the same ``(seed, classes, per_class)`` recipe always
    yields a byte-identical manifest, and each class's scenarios do not
    depend on which other classes were requested.
    """
    chosen = list(classes) if classes is not None else list(CLASSES)
    unknown = [c for c in chosen if c not in _GENERATORS]
    if unknown:
        raise ValueError(
            f"unknown scenario classes {unknown}; choices: {', '.join(CLASSES)}"
        )
    if per_class < 1:
        raise ValueError("per_class must be positive")
    manifest = CorpusManifest(seed=seed, classes=chosen, per_class=per_class)
    for scenario_class in chosen:
        rng = class_rng(seed, scenario_class)
        generate = _GENERATORS[scenario_class]
        for index in range(per_class):
            scenario = None
            for attempt in range(_MAX_ATTEMPTS):
                family, size, golden = _pick_unit(rng, index)
                nets = family.probe_nets(golden)
                try:
                    measurements, expected, faults, extra = generate(
                        rng, family, golden, nets, index
                    )
                except (SimulationError, ValueError):
                    continue
                metadata = (("family", family.name), ("size", str(size))) + tuple(extra)
                scenario = Scenario(
                    id=f"{scenario_class}-{index:04d}",
                    scenario_class=scenario_class,
                    netlist_text=write_netlist(golden),
                    measurements=measurements,
                    expected=expected,
                    faults=faults,
                    metadata=tuple(sorted(metadata)),
                )
                break
            if scenario is None:
                raise RuntimeError(
                    f"could not generate a solvable {scenario_class!r} scenario "
                    f"after {_MAX_ATTEMPTS} attempts (index {index})"
                )
            manifest.scenarios.append(scenario)
    return manifest
