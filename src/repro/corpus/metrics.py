"""Accuracy and latency metrics for corpus runs.

All scoring consumes the machine-readable ``diagnosis_to_dict`` payload
(the shape every execution plane already emits), so the same functions
score a local harness run, a fleet batch or a server response.

Scoring rules per scenario class:

* Classes with a ground-truth defect (everything except
  ``tolerance-stackup``): the *rank of the true fault* is the best
  (lowest) 1-based position any defective component reaches in the
  suspicion ranking; ``hit@k`` is true when that rank is <= k.  Ties
  are broken deterministically (score descending, then component name),
  matching ``DiagnosisResult.ranked_components``.
* ``tolerance-stackup`` (expected empty): there is no culprit, so a run
  is correct — at every k — exactly when the engine indicts nobody with
  certainty: the unit reports consistent, or every suspicion stays
  below :data:`CERTAIN`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CERTAIN",
    "ranking_from_payload",
    "rank_of_true_fault",
    "no_certain_culprit",
    "scenario_hit",
    "low_degree_nogoods",
    "percentile",
]

#: Suspicion degree treated as a certain indictment (1.0 modulo float fuzz).
CERTAIN = 1.0 - 1e-9


def ranking_from_payload(diagnosis: Dict) -> List[Tuple[str, float]]:
    """Deterministic suspicion ranking from a ``diagnosis_to_dict`` payload."""
    suspicions = diagnosis.get("suspicions") or {}
    return sorted(suspicions.items(), key=lambda kv: (-kv[1], kv[0]))


def rank_of_true_fault(
    diagnosis: Dict, expected: Sequence[str]
) -> Optional[int]:
    """Best 1-based rank any truly-defective component reaches (None = unranked)."""
    if not expected:
        return None
    wanted = set(expected)
    for position, (component, _score) in enumerate(ranking_from_payload(diagnosis), 1):
        if component in wanted:
            return position
    return None


def no_certain_culprit(diagnosis: Dict) -> bool:
    """True when the engine indicts nobody with certainty (stackup scoring)."""
    if diagnosis.get("status") == "consistent":
        return True
    suspicions = diagnosis.get("suspicions") or {}
    return all(score < CERTAIN for score in suspicions.values())


def scenario_hit(expected: Sequence[str], diagnosis: Dict, k: int) -> bool:
    """Is this scenario's outcome correct at cut-off ``k``?"""
    if not expected:
        return no_certain_culprit(diagnosis)
    rank = rank_of_true_fault(diagnosis, expected)
    return rank is not None and rank <= k


def low_degree_nogoods(diagnosis: Dict) -> bool:
    """Did the run surface any *partially* inconsistent nogood (degree < 1)?

    The fuzzy-ATMS signature of an intermittent defect: mixing readings
    from the defective and healthy unit yields contradictory evidence,
    so at least one weighted nogood carries an inconsistency degree
    strictly below the hard 1.0 a persistent defect pins.
    """
    nogoods = diagnosis.get("nogoods") or []
    return any(ng.get("degree", 1.0) < CERTAIN for ng in nogoods)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile; 0 <= q <= 100."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight
