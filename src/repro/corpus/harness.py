"""The corpus benchmark/regression harness.

``run_corpus`` executes a :class:`~repro.corpus.scenarios.CorpusManifest`
through the fleet engine on one or more kernels and folds the outcomes
into a :class:`CorpusReport`: rank-of-true-fault accuracy (hit\\@k and
mean rank) and latency percentiles, broken down per scenario class.

The *accuracy* half of a report is deterministic — same manifest, same
numbers, regardless of pool width or executor flavour — and
:meth:`CorpusReport.to_json` serialises exactly that half
(byte-identical across runs), so CI can diff it against a committed
floor.  The *latency* half is wall-clock and changes run to run; it is
carried separately and only included when explicitly asked for.

This module is a library first: the ``repro corpus`` CLI, the smoke
script, the benchmark and any fleet/server layer all call
:func:`run_corpus` / :func:`check_floor` rather than reimplementing
scoring.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.metrics import (
    low_degree_nogoods,
    percentile,
    rank_of_true_fault,
    scenario_hit,
)
from repro.corpus.scenarios import CorpusManifest, Scenario
from repro.kernel import resolve_kernel
from repro.service.jobs import DiagnosisJob, JobResult
from repro.service.pool import FleetEngine

__all__ = [
    "ScenarioOutcome",
    "ClassStats",
    "CorpusReport",
    "run_corpus",
    "check_floor",
    "DEFAULT_TOP_K",
]

DEFAULT_TOP_K: Tuple[int, ...] = (1, 3, 5)


@dataclass
class ScenarioOutcome:
    """One scenario's scored result on one kernel."""

    id: str
    scenario_class: str
    kernel: str
    status: str
    rank: Optional[int]
    hits: Dict[int, bool]
    low_degree: bool
    elapsed: float

    @property
    def completed(self) -> bool:
        return self.status in ("ok", "degraded")


@dataclass
class ClassStats:
    """Aggregated accuracy + latency for one (kernel, class) cell."""

    n: int = 0
    failures: int = 0
    hits: Dict[int, int] = field(default_factory=dict)
    ranks: List[int] = field(default_factory=list)
    low_degree: int = 0
    latencies: List[float] = field(default_factory=list)

    def fold(self, outcome: ScenarioOutcome) -> None:
        self.n += 1
        if not outcome.completed:
            self.failures += 1
        for k, hit in outcome.hits.items():
            self.hits[k] = self.hits.get(k, 0) + (1 if hit else 0)
        if outcome.rank is not None:
            self.ranks.append(outcome.rank)
        if outcome.low_degree:
            self.low_degree += 1
        self.latencies.append(outcome.elapsed)

    def accuracy_dict(self) -> Dict:
        data: Dict = {
            "n": self.n,
            "failures": self.failures,
            "ranked_rate": round(len(self.ranks) / self.n, 6) if self.n else 0.0,
            "mean_rank": (
                round(sum(self.ranks) / len(self.ranks), 6) if self.ranks else None
            ),
            "low_degree_rate": round(self.low_degree / self.n, 6) if self.n else 0.0,
        }
        for k in sorted(self.hits):
            data[f"top{k}"] = round(self.hits[k] / self.n, 6) if self.n else 0.0
        return data

    def latency_dict(self) -> Dict:
        return {
            "p50_ms": round(percentile(self.latencies, 50) * 1e3, 3),
            "p95_ms": round(percentile(self.latencies, 95) * 1e3, 3),
            "mean_ms": (
                round(sum(self.latencies) / len(self.latencies) * 1e3, 3)
                if self.latencies
                else 0.0
            ),
        }


@dataclass
class CorpusReport:
    """Everything one corpus run produced, per kernel and scenario class."""

    seed: int
    top_k: Tuple[int, ...]
    kernels: Tuple[str, ...]
    outcomes: List[ScenarioOutcome] = field(default_factory=list)

    def stats(self) -> Dict[str, Dict[str, ClassStats]]:
        """``{kernel: {class: ClassStats}}`` plus an ``overall`` row each."""
        table: Dict[str, Dict[str, ClassStats]] = {}
        for outcome in self.outcomes:
            per_kernel = table.setdefault(outcome.kernel, {})
            per_kernel.setdefault(outcome.scenario_class, ClassStats()).fold(outcome)
            per_kernel.setdefault("overall", ClassStats()).fold(outcome)
        return table

    def to_dict(self, include_latency: bool = False) -> Dict:
        """Machine-readable report.

        The default (``include_latency=False``) is the *canonical* form:
        accuracy only, deterministic for a given manifest, suitable for
        byte-for-byte diffing and floor checks.  Latency percentiles are
        wall-clock noise and only appear when asked for.
        """
        kernels: Dict[str, Dict] = {}
        for kernel, classes in sorted(self.stats().items()):
            cell: Dict[str, Dict] = {}
            for name, stats in sorted(classes.items()):
                entry = {"accuracy": stats.accuracy_dict()}
                if include_latency:
                    entry["latency"] = stats.latency_dict()
                cell[name] = entry
            kernels[kernel] = cell
        scenario_count = (
            max(len([o for o in self.outcomes if o.kernel == k]) for k in self.kernels)
            if self.outcomes
            else 0
        )
        return {
            "version": 1,
            "seed": self.seed,
            "top_k": list(self.top_k),
            "scenarios": scenario_count,
            "kernels": kernels,
        }

    def to_json(self, include_latency: bool = False) -> str:
        return json.dumps(self.to_dict(include_latency), indent=2, sort_keys=True) + "\n"


def _score(
    scenario: Scenario, result: JobResult, kernel: str, top_k: Sequence[int]
) -> ScenarioOutcome:
    diagnosis = result.diagnosis if result.completed else {}
    return ScenarioOutcome(
        id=scenario.id,
        scenario_class=scenario.scenario_class,
        kernel=kernel,
        status=result.status,
        rank=rank_of_true_fault(diagnosis, scenario.expected),
        hits={k: result.completed and scenario_hit(scenario.expected, diagnosis, k)
              for k in top_k},
        low_degree=low_degree_nogoods(diagnosis),
        elapsed=result.elapsed,
    )


def run_corpus(
    manifest: CorpusManifest,
    kernels: Sequence[str] = ("reference", "fast"),
    workers: int = 4,
    executor: str = "process",
    top_k: Sequence[int] = DEFAULT_TOP_K,
    engine: Optional[FleetEngine] = None,
) -> CorpusReport:
    """Execute every scenario on every kernel and score the outcomes.

    A caller-supplied ``engine`` (the fleet/server layers' resident one)
    is reused as-is; otherwise a throwaway pool of ``workers`` is spun
    up per kernel.  Scenario content is unique by construction, so the
    result cache never short-circuits a measurement.
    """
    resolved = tuple(resolve_kernel(k) for k in kernels)
    report = CorpusReport(seed=manifest.seed, top_k=tuple(top_k), kernels=resolved)
    for kernel in resolved:
        jobs = [
            DiagnosisJob(
                unit=s.id,
                netlist_text=s.netlist_text,
                measurements=s.measurements,
                config=(("kernel", kernel),),
            )
            for s in manifest.scenarios
        ]
        owner = engine if engine is not None else FleetEngine(
            workers=workers, executor=executor, cache_size=16
        )
        batch = owner.run_batch(jobs)
        for scenario, result in zip(manifest.scenarios, batch.results):
            report.outcomes.append(_score(scenario, result, kernel, top_k))
    return report


def check_floor(report: CorpusReport, floor: Dict) -> List[str]:
    """Compare a report against a committed accuracy floor.

    ``floor`` holds minimum acceptable rates — ``{"top1": {"<class>":
    0.8, ..., "overall": 0.85}}`` — enforced on *every* kernel the
    report covers.  Returns human-readable breach descriptions (empty =
    the floor holds).
    """
    breaches: List[str] = []
    table = report.to_dict()["kernels"]
    for metric, minimums in sorted((floor.get("floors") or floor).items()):
        if not isinstance(minimums, dict):
            continue
        for name, minimum in sorted(minimums.items()):
            for kernel, classes in sorted(table.items()):
                cell = classes.get(name)
                if cell is None:
                    breaches.append(f"{kernel}/{name}: class missing from report")
                    continue
                actual = cell["accuracy"].get(metric)
                if actual is None:
                    breaches.append(f"{kernel}/{name}: metric {metric!r} missing")
                elif actual < float(minimum) - 1e-9:
                    breaches.append(
                        f"{kernel}/{name}: {metric} {actual:.3f} < floor {float(minimum):.3f}"
                    )
    return breaches
