"""Scenario corpus at scale: seeded generation + accuracy regression.

The corpus plane turns the paper's handful of validation circuits into
thousands of deterministic scenarios — multi-fault units, intermittent
defects, temperature-coefficient drift sweeps, tolerance stackups —
and scores any kernel against them: rank-of-true-fault accuracy and
latency percentiles per scenario class (see README "Corpus mode").

Entry points: :func:`generate_corpus` builds a manifest from a
``(seed, classes)`` recipe, :func:`run_corpus` executes one on the
fleet engine, :func:`check_floor` enforces the committed accuracy
floor (``benchmarks/corpus_floor.json``), and ``repro corpus`` is the
CLI over all three.
"""

from repro.corpus.generator import CLASSES, FAMILIES, class_rng, generate_corpus
from repro.corpus.harness import (
    DEFAULT_TOP_K,
    ClassStats,
    CorpusReport,
    ScenarioOutcome,
    check_floor,
    run_corpus,
)
from repro.corpus.metrics import (
    CERTAIN,
    low_degree_nogoods,
    no_certain_culprit,
    percentile,
    rank_of_true_fault,
    ranking_from_payload,
    scenario_hit,
)
from repro.corpus.scenarios import MANIFEST_VERSION, CorpusManifest, Scenario

__all__ = [
    "CLASSES",
    "FAMILIES",
    "class_rng",
    "generate_corpus",
    "DEFAULT_TOP_K",
    "ClassStats",
    "CorpusReport",
    "ScenarioOutcome",
    "check_floor",
    "run_corpus",
    "CERTAIN",
    "low_degree_nogoods",
    "no_certain_culprit",
    "percentile",
    "rank_of_true_fault",
    "ranking_from_payload",
    "scenario_hit",
    "MANIFEST_VERSION",
    "CorpusManifest",
    "Scenario",
]
