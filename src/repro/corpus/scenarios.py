"""Corpus scenarios: plain-data units of the accuracy regression floor.

A :class:`Scenario` is one generated unit under test, fully serialised:
the golden design (netlist text), the fuzzy bench readings, the injected
ground-truth defects and the scenario-class label.  A
:class:`CorpusManifest` is an ordered collection of scenarios plus the
``(seed, scenario classes)`` recipe that produced it — everything the
harness needs to re-run the corpus on any kernel, and everything a
reviewer needs to see exactly what changed when the generator changes.

Determinism contract: building a manifest twice from the same recipe
yields byte-identical :meth:`CorpusManifest.to_json` output (the golden
snapshot tests and ``repro corpus`` CLI rely on it).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.faults import Fault
from repro.circuit.measurements import Measurement
from repro.circuit.netlist import Circuit
from repro.circuit.spice import parse_netlist
from repro.fuzzy import FuzzyInterval

__all__ = ["Scenario", "CorpusManifest", "MANIFEST_VERSION"]

#: Bumped when the serialised shape changes incompatibly.
MANIFEST_VERSION = 1

#: One fuzzy measurement as plain data: (point, m1, m2, alpha, beta).
MeasurementTuple = Tuple[str, float, float, float, float]


@dataclass(frozen=True)
class Scenario:
    """One unit under test, fully described as plain data.

    Attributes:
        id: unique label within the manifest (``<class>-<seq>``).
        scenario_class: which generator family produced it (``single-hard``,
            ``intermittent``, ...).
        netlist_text: the golden design in the SPICE-subset card format.
        measurements: fuzzy bench readings as plain tuples.
        expected: ground truth — names of the components actually
            defective.  Empty for tolerance-stackup scenarios, where the
            correct answer is *no single culprit*.
        faults: the injected defects, serialised (empty for stackup,
            whose drift is pure tolerance noise rather than a defect).
        metadata: generator bookkeeping (topology family, size, drift
            magnitudes, intermittent presence mask ...) — documentation
            for humans and assertions for tests, never consumed by the
            harness's scoring.
    """

    id: str
    scenario_class: str
    netlist_text: str
    measurements: Tuple[MeasurementTuple, ...]
    expected: Tuple[str, ...] = ()
    faults: Tuple[Fault, ...] = ()
    metadata: Tuple[Tuple[str, object], ...] = ()

    def circuit(self) -> Circuit:
        return parse_netlist(self.netlist_text, name=self.id)

    def to_measurements(self) -> List[Measurement]:
        return [
            Measurement(point, FuzzyInterval(m1, m2, alpha, beta))
            for point, m1, m2, alpha, beta in self.measurements
        ]

    @property
    def meta(self) -> Dict[str, object]:
        return dict(self.metadata)

    def to_dict(self) -> Dict:
        return {
            "id": self.id,
            "class": self.scenario_class,
            "netlist_text": self.netlist_text,
            "measurements": [list(m) for m in self.measurements],
            "expected": list(self.expected),
            "faults": [f.to_dict() for f in self.faults],
            "metadata": {k: v for k, v in self.metadata},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Scenario":
        return cls(
            id=str(data["id"]),
            scenario_class=str(data["class"]),
            netlist_text=str(data["netlist_text"]),
            measurements=tuple(
                (str(m[0]), float(m[1]), float(m[2]), float(m[3]), float(m[4]))
                for m in data["measurements"]
            ),
            expected=tuple(str(c) for c in data.get("expected", [])),
            faults=tuple(Fault.from_dict(f) for f in data.get("faults", [])),
            metadata=tuple(sorted((data.get("metadata") or {}).items())),
        )


@dataclass
class CorpusManifest:
    """An ordered scenario corpus plus the recipe that generated it."""

    seed: int
    classes: List[str]
    per_class: int
    scenarios: List[Scenario] = field(default_factory=list)
    version: int = MANIFEST_VERSION

    def __len__(self) -> int:
        return len(self.scenarios)

    def by_class(self) -> Dict[str, List[Scenario]]:
        """Scenarios grouped by class, in manifest order."""
        grouped: Dict[str, List[Scenario]] = {}
        for s in self.scenarios:
            grouped.setdefault(s.scenario_class, []).append(s)
        return grouped

    def select(self, classes: Optional[Sequence[str]] = None) -> List[Scenario]:
        if classes is None:
            return list(self.scenarios)
        wanted = set(classes)
        return [s for s in self.scenarios if s.scenario_class in wanted]

    def to_dict(self) -> Dict:
        return {
            "version": self.version,
            "seed": self.seed,
            "classes": list(self.classes),
            "per_class": self.per_class,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def to_json(self) -> str:
        """Canonical byte-stable serialisation (sorted keys, 2-space indent)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict) -> "CorpusManifest":
        return cls(
            seed=int(data["seed"]),
            classes=[str(c) for c in data["classes"]],
            per_class=int(data["per_class"]),
            scenarios=[Scenario.from_dict(s) for s in data["scenarios"]],
            version=int(data.get("version", MANIFEST_VERSION)),
        )

    @classmethod
    def from_json(cls, text: str) -> "CorpusManifest":
        return cls.from_dict(json.loads(text))
