"""Assumptions and environments.

An *assumption* is a proposition taken on faith — in circuit diagnosis,
``Correct(R1)`` for each component (paper section 6).  An *environment*
is a set of assumptions; a node "holds in" an environment when it is
derivable from those assumptions plus the premises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator

__all__ = ["Assumption", "Environment"]


@dataclass(frozen=True, order=True)
class Assumption:
    """A named propositional assumption, e.g. the correctness of a component.

    ``datum`` is an optional payload tying the assumption back to the
    domain object (a component name in FLAMES).
    """

    name: str
    datum: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Environment:
    """An immutable set of assumptions, ordered for deterministic display."""

    assumptions: FrozenSet[Assumption] = field(default_factory=frozenset)

    @classmethod
    def of(cls, *assumptions: Assumption) -> "Environment":
        return cls(frozenset(assumptions))

    @classmethod
    def empty(cls) -> "Environment":
        return _EMPTY

    def union(self, other: "Environment") -> "Environment":
        if not other.assumptions:
            return self
        if not self.assumptions:
            return other
        return Environment(self.assumptions | other.assumptions)

    def is_subset(self, other: "Environment") -> bool:
        return self.assumptions <= other.assumptions

    def is_proper_subset(self, other: "Environment") -> bool:
        return self.assumptions < other.assumptions

    def contains(self, assumption: Assumption) -> bool:
        return assumption in self.assumptions

    def without(self, assumption: Assumption) -> "Environment":
        return Environment(self.assumptions - {assumption})

    @property
    def size(self) -> int:
        return len(self.assumptions)

    def __iter__(self) -> Iterator[Assumption]:
        return iter(sorted(self.assumptions))

    def __len__(self) -> int:
        return len(self.assumptions)

    def __bool__(self) -> bool:
        return bool(self.assumptions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.assumptions:
            return "{}"
        return "{" + ",".join(a.name for a in sorted(self.assumptions)) + "}"


_EMPTY = Environment(frozenset())


def minimal_antichain(environments: Iterable[Environment]) -> set:
    """Keep only the subset-minimal environments of a collection."""
    envs = sorted(set(environments), key=lambda e: e.size)
    kept: list = []
    for env in envs:
        if not any(k.is_subset(env) for k in kept):
            kept.append(env)
    return set(kept)
