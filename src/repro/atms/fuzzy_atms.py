"""The fuzzy ATMS — FLAMES's kernel (paper section 6).

Extends the classic ATMS in the three ways the paper describes:

* **uncertain clauses** — justifications carry certainty degrees, so the
  expert can add fault-estimation rules and component fault models "with
  certainty degrees";
* **weighted nogoods** — a frank conflict records a nogood with degree 1,
  a *partial* conflict (``0 < Dc < 1``) records a nogood with degree
  ``1 - Dc`` which ranks candidates without pruning environments;
* **non-Horn clauses** — a disjunctive consequent is encoded by choice
  assumptions (one per disjunct) plus a nogood over their joint absence,
  provided by :meth:`FuzzyATMS.add_disjunction`.

With ``hard_threshold = 1.0`` (the default) only total conflicts remove
environments from labels, which is exactly the behaviour that lets
FLAMES keep "possibly true in order-of-magnitude" values alive with a
membership degree instead of discarding them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.atms.assumptions import Assumption, Environment
from repro.atms.atms import ATMS
from repro.atms.nodes import Node
from repro.atms.nogood import WeightedNogood
from repro.fuzzy.logic import TNorm, t_norm_min

__all__ = ["FuzzyATMS", "WeightedNogood"]


class FuzzyATMS(ATMS):
    """ATMS over degree-weighted environments with soft conflicts."""

    def __init__(
        self, t_norm: TNorm = t_norm_min, hard_threshold: float = 1.0
    ) -> None:
        super().__init__(t_norm=t_norm, hard_threshold=hard_threshold)
        self._disjunction_counter = 0

    # ------------------------------------------------------------------
    # Soft conflicts
    # ------------------------------------------------------------------
    def declare_soft_nogood(
        self, informant: str, antecedents: Sequence[Node], conflict_degree: float
    ) -> None:
        """Record a (possibly partial) conflict among ``antecedents``.

        ``conflict_degree`` is ``1 - Dc``: 1 means a frank conflict, lower
        values mean the discrepancy is only partially outside tolerance.
        Zero-degree "conflicts" are ignored (a corroboration is not a
        conflict — and, as the paper stresses, not an exoneration either).
        """
        if conflict_degree <= 0.0:
            return
        self.declare_nogood(informant, antecedents, min(conflict_degree, 1.0))

    def weighted_nogoods(self, threshold: float = 0.0) -> List[WeightedNogood]:
        """All recorded nogoods above ``threshold``, most serious first."""
        return self.nogoods.minimal(threshold)

    # ------------------------------------------------------------------
    # Non-Horn support
    # ------------------------------------------------------------------
    def add_disjunction(
        self, informant: str, disjuncts: Sequence[Node], degree: float = 1.0
    ) -> List[Node]:
        """Assert ``d1 or d2 or ... or dn`` (a non-Horn clause).

        Encoded with one fresh *choice assumption* per disjunct: choosing
        ``Ci`` justifies ``di``, and the set of all choices is exhaustive
        — any environment that makes every choice's negation hold is
        contradictory.  Concretely we justify each disjunct from its
        choice and declare every pair of choices mutually exclusive only
        implicitly (the ATMS reasons fine with overlapping choices; the
        exhaustiveness nogood is what encodes the disjunction).

        Returns the choice assumption nodes so callers can reason about
        the alternatives.
        """
        if not disjuncts:
            raise ValueError("a disjunction needs at least one disjunct")
        self._disjunction_counter += 1
        tag = f"choice#{self._disjunction_counter}"
        choices: List[Node] = []
        negations: List[Node] = []
        for i, disjunct in enumerate(disjuncts):
            choice = self.create_assumption(f"{tag}.{i}[{disjunct.datum}]")
            self.justify(informant, [choice], disjunct, degree)
            negation = self.create_assumption(f"not({tag}.{i})")
            self.declare_nogood(f"{informant}:excl", [choice, negation])
            choices.append(choice)
            negations.append(negation)
        # Exhaustiveness: rejecting every disjunct is contradictory.
        self.declare_nogood(f"{informant}:exhaust", negations, degree)
        return choices

    # ------------------------------------------------------------------
    # Candidate-facing queries
    # ------------------------------------------------------------------
    def assumption_suspicions(self, threshold: float = 0.0) -> Dict[Assumption, float]:
        """Max nogood degree per assumption — the paper's candidate order."""
        scores: Dict[Assumption, float] = {}
        for nogood in self.weighted_nogoods(threshold):
            for assumption in nogood.environment:
                if scores.get(assumption, 0.0) < nogood.degree:
                    scores[assumption] = nogood.degree
        return scores

    def environment_degree(self, env: Environment) -> float:
        """How consistent an environment still is: ``1 - conflict degree``."""
        return 1.0 - self.nogoods.conflict_degree(env)
