"""The assumption-based truth maintenance system (de Kleer, AIJ 1986).

The ATMS maintains, for every node, the *label*: the set of minimal
assumption environments under which the node holds.  Labels are kept

* **sound** — the node is derivable from each label environment,
* **consistent** — no label environment contains a (hard) nogood,
* **minimal** — no label environment subsumes another, and
* **complete** — every consistent derivation environment is a superset
  of some label environment,

by incremental propagation over the justification graph (the *weave*).

Degrees are threaded through the whole algorithm so that the fuzzy
extension (:mod:`repro.atms.fuzzy_atms`) is a configuration, not a fork:
with every degree equal to 1.0 this is precisely the classic ATMS.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.atms.assumptions import Assumption, Environment
from repro.atms.nodes import Justification, Node
from repro.atms.nogood import NogoodDatabase, WeightedNogood
from repro.fuzzy.logic import TNorm, t_norm_min

__all__ = ["ATMS"]


class ATMS:
    """Classic ATMS over weighted environments.

    Args:
        t_norm: conjunction used to combine degrees along a derivation
            (min by default, matching possibilistic semantics).
        hard_threshold: nogood degree at and above which environments are
            considered frankly inconsistent and pruned from labels.
    """

    def __init__(self, t_norm: TNorm = t_norm_min, hard_threshold: float = 1.0) -> None:
        self.t_norm = t_norm
        self.nodes: Dict[str, Node] = {}
        self.nogoods = self._make_nogood_db(hard_threshold)
        self.contradiction = self.create_node("FALSE", contradiction=True)

    def _make_nogood_db(self, hard_threshold: float) -> NogoodDatabase:
        """Nogood store factory — the fast kernel swaps in a bitmask index."""
        return NogoodDatabase(hard_threshold)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def create_node(self, datum: str, contradiction: bool = False) -> Node:
        """Create (or fetch) a plain node for ``datum``."""
        if datum in self.nodes:
            existing = self.nodes[datum]
            if existing.is_contradiction != contradiction:
                raise ValueError(f"node {datum!r} already exists with another role")
            return existing
        node = Node(datum=datum, is_contradiction=contradiction)
        self.nodes[datum] = node
        return node

    def create_assumption(self, name: str, datum: str = "") -> Node:
        """Create an assumption node; its label starts as ``{{A}}``."""
        if name in self.nodes:
            node = self.nodes[name]
            if not node.is_assumption:
                raise ValueError(f"node {name!r} already exists and is not an assumption")
            return node
        assumption = Assumption(name, datum or name)
        node = Node(datum=name, assumption=assumption)
        node.label[Environment.of(assumption)] = 1.0
        self.nodes[name] = node
        return node

    def add_premise(self, node: Node) -> None:
        """Assert ``node`` unconditionally (holds in the empty environment)."""
        self._enqueue_update(node, {Environment.empty(): 1.0})
        self._drain()

    def justify(
        self,
        informant: str,
        antecedents: Sequence[Node],
        consequent: Node,
        degree: float = 1.0,
    ) -> Justification:
        """Add ``antecedents -> consequent`` and propagate labels."""
        just = Justification(informant, tuple(antecedents), consequent, degree)
        consequent.justifications.append(just)
        for ant in just.antecedents:
            ant.consequences.append(just)
        envs = self._weave(just)
        self._enqueue_update(consequent, envs)
        self._drain()
        return just

    def declare_nogood(
        self, informant: str, antecedents: Sequence[Node], degree: float = 1.0
    ) -> Justification:
        """Declare the conjunction of ``antecedents`` contradictory."""
        return self.justify(informant, antecedents, self.contradiction, degree)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, datum: str) -> Node:
        return self.nodes[datum]

    def assumptions(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.is_assumption]

    def label(self, node: Node) -> List[Environment]:
        """Minimal supporting environments, smallest first."""
        return sorted(node.label, key=lambda e: (e.size, repr(e)))

    def is_in(self, node: Node, env: Optional[Environment] = None) -> bool:
        if env is None:
            return node.is_in
        return node.holds_in(env)

    def consistent(self, env: Environment) -> bool:
        return not self.nogoods.is_inconsistent(env)

    def minimal_nogoods(self, threshold: float = 0.0) -> List[WeightedNogood]:
        return self.nogoods.minimal(threshold)

    # ------------------------------------------------------------------
    # Label propagation
    # ------------------------------------------------------------------
    def _weave(
        self,
        just: Justification,
        trigger: Optional[Node] = None,
        trigger_envs: Optional[Dict[Environment, float]] = None,
    ) -> Dict[Environment, float]:
        """Candidate consequent environments from the antecedent labels.

        When ``trigger`` is given, that antecedent is restricted to its
        freshly added environments — the standard incremental weave.
        """
        acc: Dict[Environment, float] = {Environment.empty(): just.degree}
        for ant in just.antecedents:
            label = trigger_envs if ant is trigger else ant.label
            if not label:
                return {}
            nxt: Dict[Environment, float] = {}
            for env_a, d_a in acc.items():
                for env_b, d_b in label.items():
                    union = env_a.union(env_b)
                    if self.nogoods.is_inconsistent(union):
                        continue
                    degree = self.t_norm(d_a, d_b)
                    if degree <= 0.0:
                        continue
                    if nxt.get(union, 0.0) < degree:
                        nxt[union] = degree
            acc = _minimise(nxt)
            if not acc:
                return {}
        return acc

    def _enqueue_update(self, node: Node, envs: Dict[Environment, float]) -> None:
        if envs:
            self._queue.append((node, envs))

    @property
    def _queue(self) -> deque:
        # Lazily created so subclasses need not call super().__init__ first.
        queue = getattr(self, "_work_queue", None)
        if queue is None:
            queue = deque()
            self._work_queue = queue
        return queue

    def _drain(self) -> None:
        queue = self._queue
        while queue:
            node, envs = queue.popleft()
            added = self._update_label(node, envs)
            if not added:
                continue
            if node.is_contradiction:
                self._record_nogoods(added)
                node.label.clear()
                continue
            for just in node.consequences:
                woven = self._weave(just, trigger=node, trigger_envs=added)
                self._enqueue_update(just.consequent, woven)

    def _update_label(
        self, node: Node, envs: Dict[Environment, float]
    ) -> Dict[Environment, float]:
        """Merge candidate environments into a node label; return additions."""
        added: Dict[Environment, float] = {}
        for env, degree in envs.items():
            if self.nogoods.is_inconsistent(env):
                continue
            if any(
                e.is_subset(env) and node.label[e] >= degree for e in node.label
            ):
                continue
            doomed = [
                e
                for e in node.label
                if env.is_subset(e) and node.label[e] <= degree and e != env
            ]
            for e in doomed:
                del node.label[e]
                added.pop(e, None)
            node.label[env] = degree
            added[env] = degree
        return added

    def _record_nogoods(self, envs: Dict[Environment, float]) -> None:
        for env, degree in envs.items():
            if not self.nogoods.add(env, degree):
                continue
            if degree >= self.nogoods.hard_threshold:
                self._retract(env)

    def _retract(self, nogood_env: Environment) -> None:
        """Remove the nogood environment and its supersets from every label."""
        for node in self.nodes.values():
            doomed = [e for e in node.label if nogood_env.is_subset(e)]
            for e in doomed:
                del node.label[e]

    # ------------------------------------------------------------------
    # Introspection helpers (used by benchmarks)
    # ------------------------------------------------------------------
    def label_sizes(self) -> Dict[str, int]:
        """Number of label environments per node (label-growth metric)."""
        return {datum: len(node.label) for datum, node in self.nodes.items()}

    def stats(self) -> Dict[str, int]:
        return {
            "nodes": len(self.nodes),
            "assumptions": len(self.assumptions()),
            "justifications": sum(len(n.justifications) for n in self.nodes.values()),
            "nogoods": len(self.nogoods),
            "label_environments": sum(len(n.label) for n in self.nodes.values()),
        }


def _minimise(envs: Dict[Environment, float]) -> Dict[Environment, float]:
    """Drop environments subsumed by a subset at an equal-or-higher degree."""
    kept: Dict[Environment, float] = {}
    for env in sorted(envs, key=lambda e: (e.size, -envs[e])):
        degree = envs[env]
        if any(e.is_subset(env) and kept[e] >= degree for e in kept):
            continue
        kept[env] = degree
    return kept
