"""Assumption-based truth maintenance: the kernel substrate of FLAMES.

``atms.py`` implements the classic de Kleer ATMS (nodes, justifications,
labels that are kept minimal, sound, consistent and complete, and a
nogood database).  ``fuzzy_atms.py`` extends it the way the paper's
section 6 describes: environments and nogoods carry consistency degrees
in [0, 1], justifications may be uncertain, partial conflicts weight
candidates instead of eliminating them, and clauses are not restricted
to Horn form.  ``candidates.py`` turns minimal (weighted) nogoods into
ranked minimal diagnoses via hitting sets.
"""

from repro.atms.assumptions import Assumption, Environment
from repro.atms.nodes import Node, Justification
from repro.atms.atms import ATMS
from repro.atms.fuzzy_atms import FuzzyATMS, WeightedNogood
from repro.atms.nogood import NogoodDatabase
from repro.atms.candidates import (
    Diagnosis,
    minimal_hitting_sets,
    minimal_diagnoses,
    suspicion_scores,
)
from repro.atms.interpretations import interpretations

__all__ = [
    "Assumption",
    "Environment",
    "Node",
    "Justification",
    "ATMS",
    "FuzzyATMS",
    "WeightedNogood",
    "NogoodDatabase",
    "Diagnosis",
    "minimal_hitting_sets",
    "minimal_diagnoses",
    "suspicion_scores",
    "interpretations",
]
