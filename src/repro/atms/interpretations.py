"""Interpretations: maximal consistent environments.

de Kleer's ATMS characterises the global solution space through the
*interpretations* — maximal assumption environments that contain no
nogood.  FLAMES itself reasons on nogoods and candidates, but the
scaling benchmark compares interpretation counts between crisp and
fuzzy conflict handling, so we implement the construction directly.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.atms.assumptions import Assumption, Environment
from repro.atms.nogood import NogoodDatabase

__all__ = ["interpretations"]


def interpretations(
    assumptions: Sequence[Assumption],
    nogoods: NogoodDatabase,
    limit: int = 10000,
) -> List[Environment]:
    """All maximal environments over ``assumptions`` consistent with ``nogoods``.

    Depth-first construction with subset pruning.  ``limit`` bounds the
    result count defensively — interpretation counts grow exponentially
    with faults under consideration, which is exactly why the paper keeps
    the ATMS around.
    """
    ordered = sorted(assumptions)
    results: List[Environment] = []

    def extend(index: int, current: Environment) -> None:
        if len(results) >= limit:
            return
        if index == len(ordered):
            if not any(current.is_subset(r) for r in results):
                results[:] = [r for r in results if not r.is_proper_subset(current)]
                results.append(current)
            return
        candidate = Environment(current.assumptions | {ordered[index]})
        if not nogoods.is_inconsistent(candidate):
            extend(index + 1, candidate)
        extend(index + 1, current)

    extend(0, Environment.empty())
    # Final maximality sweep (branch order can admit dominated leaves).
    maximal: List[Environment] = []
    for env in sorted(results, key=lambda e: -e.size):
        if not any(env.is_proper_subset(kept) for kept in maximal):
            maximal.append(env)
    return maximal
