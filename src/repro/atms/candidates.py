"""From minimal nogoods to ranked diagnosis candidates.

Following de Kleer & Williams (GDE) and Reiter, the minimal *diagnoses*
(candidate sets of faulty components) are exactly the minimal hitting
sets of the minimal conflicts.  FLAMES adds degrees: each nogood has a
seriousness in (0, 1], a component's *suspicion* is the strongest nogood
implicating it, and a diagnosis inherits the weakest degree among the
nogoods it has to explain (its weakest link).  The paper's diode example
(figure 5) surfaces nogoods ``{r1,d1}@0.5`` and ``{r2,d1}@1`` and lets
the expert "give more concentration" to the serious one — that ordering
is the suspicion score here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.atms.assumptions import Assumption
from repro.atms.nogood import WeightedNogood

__all__ = [
    "Diagnosis",
    "minimal_hitting_sets",
    "minimal_diagnoses",
    "suspicion_scores",
]


@dataclass(frozen=True)
class Diagnosis:
    """A minimal candidate: blame exactly these assumptions' components.

    ``degree`` is the weakest seriousness among the conflicts the
    diagnosis explains — how strongly the evidence demands *some* member
    of this candidate be faulty.
    """

    assumptions: FrozenSet[Assumption]
    degree: float

    @property
    def size(self) -> int:
        return len(self.assumptions)

    @property
    def components(self) -> Tuple[str, ...]:
        """The domain objects blamed, sorted for stable display."""
        return tuple(sorted(a.datum or a.name for a in self.assumptions))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ",".join(sorted(a.name for a in self.assumptions))
        return f"[{names}]@{self.degree:g}"


def minimal_hitting_sets(
    sets: Sequence[FrozenSet],
    max_size: Optional[int] = None,
) -> List[FrozenSet]:
    """All subset-minimal hitting sets of ``sets``.

    Branch-and-prune search in the style of Reiter's HS-tree: process
    conflict sets smallest-first, branch on the elements of the first
    set the partial candidate misses.  An empty conflict set is
    unhittable and yields no candidates.  ``max_size`` bounds candidate
    cardinality (the usual "consider at most k simultaneous faults").
    """
    conflict_sets = sorted({frozenset(s) for s in sets}, key=len)
    if any(not s for s in conflict_sets):
        return []
    if not conflict_sets:
        return [frozenset()]
    results: List[FrozenSet] = []

    def extend(partial: FrozenSet, remaining: Tuple[FrozenSet, ...]) -> None:
        unhit = [s for s in remaining if not (s & partial)]
        if not unhit:
            if not any(r <= partial for r in results):
                results[:] = [r for r in results if not partial <= r or r == partial]
                results.append(partial)
            return
        if max_size is not None and len(partial) >= max_size:
            return
        branch_set = min(unhit, key=len)
        for element in sorted(branch_set, key=repr):
            extend(partial | {element}, tuple(unhit))

    extend(frozenset(), tuple(conflict_sets))
    # Final minimality sweep (branch order can momentarily admit supersets).
    minimal: List[FrozenSet] = []
    for cand in sorted(results, key=len):
        if not any(kept < cand for kept in minimal):
            minimal.append(cand)
    return minimal


def minimal_diagnoses(
    nogoods: Iterable[WeightedNogood],
    threshold: float = 0.0,
    max_size: Optional[int] = None,
) -> List[Diagnosis]:
    """Ranked minimal diagnoses explaining every nogood above ``threshold``.

    Nogoods below the threshold are treated as noise and need not be hit
    (the paper's way to "restrict the effect of explosion": the expert
    works down the sorted list).  Results are sorted most-serious first,
    then smallest, then lexicographically.
    """
    serious = [n for n in nogoods if n.degree >= threshold and n.environment]
    if not serious:
        return []
    sets = [frozenset(n.environment.assumptions) for n in serious]
    hitters = minimal_hitting_sets(sets, max_size=max_size)
    diagnoses = []
    for hit in hitters:
        explained = [n.degree for n in serious if hit & frozenset(n.environment.assumptions)]
        degree = min(explained) if explained else 0.0
        diagnoses.append(Diagnosis(hit, degree))
    diagnoses.sort(key=lambda d: (-d.degree, d.size, d.components))
    return diagnoses


def suspicion_scores(
    nogoods: Iterable[WeightedNogood], threshold: float = 0.0
) -> Dict[Assumption, float]:
    """Per-assumption suspicion: the strongest nogood implicating it."""
    scores: Dict[Assumption, float] = {}
    for nogood in nogoods:
        if nogood.degree < threshold:
            continue
        for assumption in nogood.environment:
            if scores.get(assumption, 0.0) < nogood.degree:
                scores[assumption] = nogood.degree
    return scores
