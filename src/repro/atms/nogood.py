"""Weighted nogood database.

A *nogood* is a set of assumptions that jointly support a contradiction.
FLAMES attaches a degree to every nogood: ``1`` for a frank conflict,
``1 - Dc`` for a partial conflict (paper section 6.1.2).  The database
keeps the collection minimal under the degree-aware subsumption rule: a
nogood is redundant when a *subset* of it is already known to fail at an
equal or higher degree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.atms.assumptions import Environment

__all__ = ["WeightedNogood", "NogoodDatabase"]


@dataclass(frozen=True)
class WeightedNogood:
    """A minimal conflicting environment together with its seriousness."""

    environment: Environment
    degree: float

    def __post_init__(self) -> None:
        if not 0.0 < self.degree <= 1.0:
            raise ValueError(f"nogood degree {self.degree} outside (0, 1]")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Nogood{self.environment!r}@{self.degree:g}"


class NogoodDatabase:
    """Minimal store of weighted nogoods.

    ``hard_threshold`` decides which nogoods render environments outright
    inconsistent (removed from ATMS labels): the classic ATMS uses 1.0 so
    only frank conflicts kill environments, which is exactly the FLAMES
    behaviour — partial conflicts rank candidates without pruning.
    """

    def __init__(self, hard_threshold: float = 1.0) -> None:
        if not 0.0 < hard_threshold <= 1.0:
            raise ValueError("hard threshold must be in (0, 1]")
        self.hard_threshold = hard_threshold
        self._store: Dict[Environment, float] = {}

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self):
        return iter(self.minimal())

    def add(self, environment: Environment, degree: float = 1.0) -> bool:
        """Record a nogood; returns True when the database changed.

        Degenerate empty-environment nogoods are legal (the premises are
        contradictory) and subsume everything at their degree.
        """
        if not 0.0 < degree <= 1.0:
            raise ValueError(f"nogood degree {degree} outside (0, 1]")
        for env, d in self._store.items():
            if env.is_subset(environment) and d >= degree:
                return False
        # Remove newly subsumed entries (supersets at lower-or-equal degree).
        doomed = [
            env
            for env, d in self._store.items()
            if environment.is_subset(env) and d <= degree and env != environment
        ]
        for env in doomed:
            del self._store[env]
        changed = self._store.get(environment) != degree
        self._store[environment] = degree
        return changed or bool(doomed)

    def is_inconsistent(self, environment: Environment) -> bool:
        """True when a hard nogood is a subset of ``environment``."""
        return any(
            d >= self.hard_threshold and env.is_subset(environment)
            for env, d in self._store.items()
        )

    def conflict_degree(self, environment: Environment) -> float:
        """Strongest degree at which ``environment`` is known to conflict."""
        return max(
            (d for env, d in self._store.items() if env.is_subset(environment)),
            default=0.0,
        )

    def minimal(self, threshold: float = 0.0) -> List[WeightedNogood]:
        """All stored nogoods at degree >= ``threshold``, most serious first."""
        found = [
            WeightedNogood(env, d)
            for env, d in self._store.items()
            if d >= threshold and d > 0.0
        ]
        found.sort(key=lambda n: (-n.degree, n.environment.size, repr(n.environment)))
        return found

    def hard(self) -> List[WeightedNogood]:
        """The nogoods at or above the hard threshold."""
        return self.minimal(self.hard_threshold)

    def merge(self, others: Iterable[WeightedNogood]) -> None:
        for nogood in others:
            self.add(nogood.environment, nogood.degree)

    def clear(self) -> None:
        self._store.clear()
