"""ATMS nodes and justifications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.atms.assumptions import Assumption, Environment

__all__ = ["Node", "Justification"]


@dataclass
class Node:
    """A problem-solver datum tracked by the ATMS.

    The *label* maps each supporting environment to the degree with which
    the node holds in it (always 1.0 in the classic ATMS; in (0, 1] for
    the fuzzy extension).  Labels are maintained minimal (no environment
    subsumes another at an equal-or-higher degree), sound and consistent.
    """

    datum: str
    assumption: Optional[Assumption] = None
    is_contradiction: bool = False
    label: Dict[Environment, float] = field(default_factory=dict)
    justifications: List["Justification"] = field(default_factory=list)
    consequences: List["Justification"] = field(default_factory=list)

    @property
    def is_assumption(self) -> bool:
        return self.assumption is not None

    @property
    def is_in(self) -> bool:
        """True when the node holds in at least one consistent environment."""
        return bool(self.label)

    @property
    def environments(self) -> List[Environment]:
        return list(self.label.keys())

    def holds_in(self, env: Environment) -> bool:
        """True when some label environment is a subset of ``env``."""
        return any(e.is_subset(env) for e in self.label)

    def degree_in(self, env: Environment) -> float:
        """Strongest degree with which the node holds in ``env`` (0 if out)."""
        return max(
            (d for e, d in self.label.items() if e.is_subset(env)), default=0.0
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = "!" if self.is_contradiction else ("A:" if self.is_assumption else "")
        return f"<{flag}{self.datum} {sorted(self.label, key=lambda e: e.size)}>"


@dataclass
class Justification:
    """``antecedents -> consequent`` with an informant tag and a certainty.

    ``degree`` is 1.0 for hard (classical) inferences; the fuzzy ATMS uses
    it for uncertain clauses such as expert fault-estimation rules.
    """

    informant: str
    antecedents: Sequence[Node]
    consequent: Node
    degree: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.degree <= 1.0:
            raise ValueError(f"justification degree {self.degree} outside (0, 1]")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ants = ",".join(a.datum for a in self.antecedents) or "T"
        return f"({ants} => {self.consequent.datum} [{self.informant}])"
