"""Content-addressed LRU result cache.

Repair-shop fleets repeat themselves: the same golden design with the
same symptom shows up over and over.  Keyed on
:attr:`~repro.service.jobs.DiagnosisJob.content_hash`, the cache lets a
repeated unit skip the whole fuzzy-propagation pass and replay the
stored :class:`~repro.service.jobs.JobResult`.

Only *successful* results are worth keeping (errors are cheap to
reproduce and usually transient); the :class:`FleetEngine` enforces
that policy, the cache itself is policy-free.  Every operation —
including ``len``, membership tests and ``snapshot`` — takes the
internal lock, so one instance can be shared freely between the
diagnosis server's asyncio event loop and its executor threads;
``get``/``put`` maintain hit/miss/eviction counters that feed the
service telemetry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.service.jobs import JobResult

__all__ = ["ResultCache"]


class ResultCache:
    """An LRU mapping ``content_hash -> JobResult`` with usage counters."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[str, JobResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership test without touching recency or the counters."""
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Optional[JobResult]:
        """Look up a result, counting the hit/miss and refreshing recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, result: JobResult) -> None:
        """Store a result, evicting the least-recently-used overflow."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (the counters keep their history)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> Dict:
        """Counters and occupancy as one consistent plain dict."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
            }
