"""Content-addressed LRU result cache with entry integrity checking.

Repair-shop fleets repeat themselves: the same golden design with the
same symptom shows up over and over.  Keyed on
:attr:`~repro.service.jobs.DiagnosisJob.content_hash`, the cache lets a
repeated unit skip the whole fuzzy-propagation pass and replay the
stored :class:`~repro.service.jobs.JobResult`.

Only *completed* results are worth keeping (errors are cheap to
reproduce and usually transient); the :class:`FleetEngine` enforces
that policy, the cache itself is policy-free.  Every operation —
including ``len``, membership tests and ``snapshot`` — takes the
internal lock, so one instance can be shared freely between the
diagnosis server's asyncio event loop and its executor threads;
``get``/``put`` maintain hit/miss/eviction counters that feed the
service telemetry.

**Integrity:** each entry stores a canonical JSON serialisation of the
result alongside its sha256 digest, and every ``get`` re-verifies the
digest before replaying.  A corrupted entry — bit rot in a future
persistent backend, a buggy writer, or the chaos plane's
``cache.corrupt`` injection — is purged and counted as a miss (the
``corruptions`` counter records it); a poisoned result is *never*
served and a corrupt hit *never* raises.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.resilience import faults
from repro.service.jobs import JobResult

__all__ = ["ResultCache"]


def _seal(result: JobResult) -> Tuple[str, str]:
    """Canonical blob + sha256 digest for one stored result."""
    blob = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return blob, hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """An LRU mapping ``content_hash -> JobResult`` with usage counters."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        # key -> [result, blob, digest]; the blob/digest pair is the
        # integrity seal verified on every get.
        self._entries: "OrderedDict[str, list]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.hits_mem = 0
        self.hits_disk = 0
        self.misses = 0
        self.evictions = 0
        self.corruptions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership test without touching recency or the counters."""
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Optional[JobResult]:
        """Look up a result, counting the hit/miss and refreshing recency.

        The memory tier is probed first, then ``_get_disk`` (a no-op in
        the in-memory base class; the persistent cache overrides it) —
        ``hits_mem``/``hits_disk`` record which tier answered and always
        sum to ``hits``.  The entry's integrity seal is verified on
        every path; a corrupt entry is purged and counted as a miss
        (plus ``corruptions``) — corruption degrades the hit rate, it
        never crashes a batch or serves a poisoned result.
        """
        result = self._get_mem(key)
        if result is not None:
            with self._lock:
                self.hits += 1
                self.hits_mem += 1
            return result
        result = self._get_disk(key)
        if result is not None:
            with self._lock:
                self.hits += 1
                self.hits_disk += 1
            return result
        with self._lock:
            self.misses += 1
        return None

    def _get_mem(self, key: str) -> Optional[JobResult]:
        """Memory-tier probe: verify the seal, purge on corruption.

        Counts only ``corruptions`` — the hit/miss bookkeeping lives in
        the public ``get`` so subclasses can layer tiers underneath.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            result, blob, digest = entry
            if faults.maybe_fire("cache.corrupt", key) is not None:
                # Deterministic chaos: flip the stored blob so the
                # integrity check below sees real corruption.
                blob = entry[1] = blob[:-1] + ("x" if blob[-1:] != "x" else "y")
            if hashlib.sha256(blob.encode()).hexdigest() != digest:
                del self._entries[key]
                self.corruptions += 1
                return None
            self._entries.move_to_end(key)
            return result

    def _get_disk(self, key: str) -> Optional[JobResult]:
        """Disk-tier probe — nothing beneath the in-memory base class."""
        return None

    def put(self, key: str, result: JobResult) -> None:
        """Store a result, evicting the least-recently-used overflow."""
        if self.capacity == 0:
            return
        blob, digest = _seal(result)
        self._put_mem(key, result, blob, digest)

    def _put_mem(self, key: str, result: JobResult, blob: str, digest: str) -> None:
        with self._lock:
            self._entries[key] = [result, blob, digest]
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def tamper(self, key: str) -> bool:
        """Corrupt ``key``'s stored blob in place (test/chaos hook).

        Returns True when the entry existed.  The next ``get`` for the
        key will detect the bad seal, purge the entry and count a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            entry[1] = entry[1][:-1] + ("x" if entry[1][-1:] != "x" else "y")
            return True

    def clear(self) -> None:
        """Drop all entries (the counters keep their history)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> Dict:
        """Counters and occupancy as one consistent plain dict."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "hits_mem": self.hits_mem,
                "hits_disk": self.hits_disk,
                "misses": self.misses,
                "evictions": self.evictions,
                "corruptions": self.corruptions,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
            }
