"""Lightweight structured telemetry for the fleet service.

The single-session reproduction never needed to answer "where does the
time go?"; a throughput-oriented service does.  :class:`Telemetry`
collects three cheap primitives behind one lock:

* **counters** — monotonically increasing totals (jobs run, cache
  hits, retries, nogoods found, ...);
* **gauges** — last-written current values (active streams, chain
  length, ...): ``gauge()`` overwrites where ``incr()`` accumulates;
* **observations** — value streams summarised as count/total/min/max
  plus p50/p95/p99 percentiles over a bounded reservoir of recent
  values (per-job wall-clock, per-endpoint latency, ...);
* **phases** — wall-clock accumulated per named pipeline stage
  (hash, cache, execute, merge);

plus a bounded **event log** of structured dicts for per-job forensics.
``snapshot()`` returns everything as plain data (JSON-safe);
``summary()`` renders the human-readable digest the batch CLI prints.

Cluster aggregation: ``snapshot(samples=True)`` includes each
observation stream's raw percentile reservoir, and
:meth:`Telemetry.merge` folds a set of such snapshots (one per replica)
into a single fleet-wide snapshot — counters and phase times summed,
observation percentiles recomputed from the *combined* reservoirs.
Merging always starts from the replicas' latest cumulative snapshots,
so polling repeatedly never double-counts.

Phases are measured with the same :class:`~repro.runtime.spans.Span`
primitive the engine's :class:`~repro.runtime.context.RunContext` uses,
and :meth:`Telemetry.record_trace` folds an engine span tree into the
phase table under dotted ``engine.<stage>`` names — one timing
mechanism from the propagator's fixpoint up to ``/metrics``.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from repro.runtime.spans import Span

__all__ = ["Telemetry", "percentile"]

#: Percentiles reported for every observation stream.
PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of an empty stream")
    rank = max(0, min(len(sorted_values) - 1, round(q * len(sorted_values)) - 1))
    return sorted_values[rank]


class Telemetry:
    """Thread-safe counters, value summaries, phase timers, event log.

    ``reservoir`` bounds how many recent values each observation stream
    keeps for percentile estimation; count/total/min/max stay exact over
    the full stream regardless.
    """

    def __init__(self, max_events: int = 256, reservoir: int = 512) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._observations: Dict[str, List[float]] = {}  # [count, total, min, max]
        self._samples: Dict[str, "deque[float]"] = {}  # recent values per stream
        self._reservoir = max(1, int(reservoir))
        self._phases: Dict[str, List[float]] = {}  # [seconds, entries]
        self._events: "deque[Dict]" = deque(maxlen=max_events)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def incr(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its current value (overwrites, never sums)."""
        with self._lock:
            self._gauges[name] = value

    def gauge_add(self, name: str, delta: float) -> None:
        """Adjust a gauge by ``delta`` (e.g. +1 on stream open, -1 on close)."""
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0.0) + delta

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            stats = self._observations.get(name)
            if stats is None:
                self._observations[name] = [1, value, value, value]
                self._samples[name] = deque([value], maxlen=self._reservoir)
            else:
                stats[0] += 1
                stats[1] += value
                stats[2] = min(stats[2], value)
                stats[3] = max(stats[3], value)
                self._samples[name].append(value)

    @contextmanager
    def phase(self, name: str) -> Iterator[Span]:
        """Accumulate the wall-clock spent inside the ``with`` block.

        Measured with a :class:`Span` — the same primitive engine traces
        use — which the block may annotate via ``span.meta``.
        """
        span = Span(name=name)
        span.begin()
        try:
            yield span
        finally:
            span.finish()
            self.record_span(span)

    def record_span(self, span: Span, prefix: str = "") -> None:
        """Fold one finished span (and its subtree) into the phase table."""
        name = f"{prefix}.{span.name}" if prefix else span.name
        with self._lock:
            bucket = self._phases.setdefault(name, [0.0, 0])
            bucket[0] += span.seconds
            bucket[1] += 1
        for child in span.children:
            self.record_span(child, prefix=name)

    def record_trace(self, trace: Optional[Dict], prefix: str = "engine") -> None:
        """Fold an engine trace (``RunContext.trace()`` dict) into the phases.

        Stage timings land under dotted names (``engine.diagnose.propagate``
        ...), so per-stage engine time surfaces in ``/metrics`` and the
        batch digest with no second bookkeeping path.
        """
        if not trace:
            return
        for span_dict in trace.get("spans", ()):
            self.record_span(Span.from_dict(span_dict), prefix=prefix)

    def event(self, kind: str, **fields: object) -> None:
        """Append one structured event (oldest events roll off)."""
        entry = {"kind": kind}
        entry.update(fields)
        with self._lock:
            self._events.append(entry)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    def _observation_entry(self, name: str, samples: bool = False) -> Dict:
        c, t, lo, hi = self._observations[name]
        entry = {
            "count": int(c),
            "total": t,
            "mean": t / c if c else 0.0,
            "min": lo,
            "max": hi,
        }
        ordered = sorted(self._samples.get(name, ()))
        if ordered:
            for label, q in PERCENTILES:
                entry[label] = percentile(ordered, q)
        if samples:
            entry["samples"] = list(self._samples.get(name, ()))
        return entry

    def snapshot(self, samples: bool = False) -> Dict:
        """Everything as a JSON-safe dict.

        ``samples=True`` includes each observation's raw reservoir under
        ``"samples"`` so an aggregator (the cluster gateway) can merge
        percentiles across processes instead of averaging averages.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "observations": {
                    name: self._observation_entry(name, samples=samples)
                    for name in self._observations
                },
                "phases": {
                    name: {"seconds": secs, "entries": int(n)}
                    for name, (secs, n) in self._phases.items()
                },
                "events": list(self._events),
            }

    @staticmethod
    def merge(snapshots: "Sequence[Dict]", max_events: int = 256) -> Dict:
        """Fold telemetry snapshots from several processes into one.

        Input snapshots are cumulative per source (each replica's
        counters only grow), so aggregating the *latest* snapshot per
        source — what the gateway's ``/metrics`` does — never double
        counts.  Counters and phase accumulators are summed.  Gauges
        are summed too: each source's gauge is its *current* value, so
        the fleet-wide current value of e.g. ``streams_active`` is the
        sum over replicas (a fleet "last write wins" would be
        meaningless across processes);
        observation streams combine count/total/min/max exactly and
        recompute p50/p95/p99 from the concatenated reservoirs when the
        sources were snapshotted with ``samples=True`` (percentiles are
        omitted otherwise — merging per-source percentiles would be
        statistically meaningless).  Events interleave in input order,
        bounded by ``max_events``.
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        observations: Dict[str, Dict] = {}
        reservoirs: Dict[str, List[float]] = {}
        sampled: Dict[str, bool] = {}
        phases: Dict[str, List[float]] = {}
        events: List[Dict] = []
        for snap in snapshots:
            if not snap:
                continue
            for name, value in (snap.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in (snap.get("gauges") or {}).items():
                gauges[name] = gauges.get(name, 0.0) + value
            for name, obs in (snap.get("observations") or {}).items():
                merged = observations.get(name)
                if merged is None:
                    merged = observations[name] = {
                        "count": 0, "total": 0.0,
                        "min": obs["min"], "max": obs["max"],
                    }
                    sampled[name] = True
                merged["count"] += int(obs.get("count", 0))
                merged["total"] += float(obs.get("total", 0.0))
                merged["min"] = min(merged["min"], obs["min"])
                merged["max"] = max(merged["max"], obs["max"])
                if "samples" in obs:
                    reservoirs.setdefault(name, []).extend(obs["samples"])
                else:
                    sampled[name] = False
            for name, info in (snap.get("phases") or {}).items():
                bucket = phases.setdefault(name, [0.0, 0])
                bucket[0] += float(info.get("seconds", 0.0))
                bucket[1] += int(info.get("entries", 0))
            events.extend(snap.get("events") or ())
        for name, merged in observations.items():
            merged["mean"] = merged["total"] / merged["count"] if merged["count"] else 0.0
            ordered = sorted(reservoirs.get(name, ())) if sampled.get(name) else []
            if ordered:
                for label, q in PERCENTILES:
                    merged[label] = percentile(ordered, q)
        return {
            "counters": counters,
            "gauges": gauges,
            "observations": observations,
            "phases": {
                name: {"seconds": secs, "entries": int(n)}
                for name, (secs, n) in phases.items()
            },
            "events": events[-max_events:],
        }

    def summary(self, title: str = "telemetry") -> str:
        """Human-readable digest (counters, phase times, observations)."""
        snap = self.snapshot()
        lines = [title, "-" * len(title)]
        if snap["counters"]:
            lines.append("counters:")
            for name in sorted(snap["counters"]):
                value = snap["counters"][name]
                shown = int(value) if float(value).is_integer() else round(value, 4)
                lines.append(f"  {name}: {shown}")
        if snap.get("gauges"):
            lines.append("gauges:")
            for name in sorted(snap["gauges"]):
                value = snap["gauges"][name]
                shown = int(value) if float(value).is_integer() else round(value, 4)
                lines.append(f"  {name}: {shown}")
        if snap["phases"]:
            lines.append("phases (wall-clock):")
            for name, info in snap["phases"].items():
                lines.append(f"  {name}: {info['seconds']:.3f}s over {info['entries']} entries")
        if snap["observations"]:
            lines.append("observations:")
            for name in sorted(snap["observations"]):
                o = snap["observations"][name]
                line = (
                    f"  {name}: n={o['count']} mean={o['mean']:.4g} "
                    f"min={o['min']:.4g} max={o['max']:.4g}"
                )
                if "p50" in o:
                    line += f" p50={o['p50']:.4g} p95={o['p95']:.4g} p99={o['p99']:.4g}"
                lines.append(line)
        if len(lines) == 2:
            lines.append("(empty)")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._observations.clear()
            self._samples.clear()
            self._phases.clear()
            self._events.clear()
