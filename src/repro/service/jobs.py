"""Diagnosis jobs and machine-readable results — the fleet data plane.

The paper runs one troubleshooting session per unit under test; a
repair shop runs *fleets* of units, most of them exhibiting the same
few defects.  This module defines the unit of work the fleet engine
schedules:

* :class:`DiagnosisJob` — one unit to diagnose, described entirely as
  plain data (netlist text, fuzzy measurement tuples, scalar config
  overrides) so jobs pickle cleanly into worker processes and hash
  deterministically;
* :class:`JobResult` — the structured outcome (ranked candidates,
  minimal candidate sets, consistency table, fault-mode refinements,
  error details), JSON round-trippable;
* :func:`diagnosis_to_dict` — the JSON shape shared between
  ``python -m repro diagnose --json`` and the batch service, so a
  diagnose run's output slots straight into a batch manifest;
* :func:`job_from_spec` — turns one JSON job spec into a job; shared
  by the manifest reader and the diagnosis server's request parsing;
* :func:`load_manifest` — reads the JSON job manifest the ``batch``
  CLI consumes.

Content hashing: a job's :attr:`~DiagnosisJob.content_hash` is a sha256
over the circuit's :meth:`~repro.circuit.netlist.Circuit.fingerprint`
(order-independent electrical content), the measurement set and the
config overrides — the key of the service's content-addressed result
cache.  The unit label and the optional confirmed repair are *not*
hashed: they do not change what the engine computes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.circuit.measurements import Measurement
from repro.circuit.netlist import Circuit
from repro.circuit.spice import parse_netlist, write_netlist
from repro.core.diagnosis import DiagnosisResult, FlamesConfig
from repro.core.knowledge import ModeMatch
from repro.fuzzy import FuzzyInterval
from repro.kernel import resolve_kernel

__all__ = [
    "CONFIG_FIELDS",
    "DiagnosisJob",
    "JobResult",
    "diagnosis_to_dict",
    "measurement_to_dict",
    "measurement_from_dict",
    "job_from_spec",
    "load_manifest",
    "ManifestError",
]

#: FlamesConfig knobs a job may override — plain scalars only, so jobs
#: stay JSON- and pickle-safe (the t-norm and propagator tuning stay at
#: engine defaults).  ``kernel`` selects the implementation substrate
#: ("reference" or "fast" — identical results, see README "Kernel").
CONFIG_FIELDS = (
    "assumable_nodes",
    "conflict_threshold",
    "max_candidate_size",
    "hard_threshold",
    "kernel",
)

#: Config fields carrying strings rather than numbers.
_STRING_FIELDS = frozenset({"kernel"})

#: One fuzzy measurement as plain data: (point, m1, m2, alpha, beta).
MeasurementTuple = Tuple[str, float, float, float, float]


class ManifestError(ValueError):
    """A batch manifest (or one of its job specs) is malformed."""


def _resolve_sanitize(policy: str) -> str:
    from repro.resilience.sanitize import POLICIES

    policy = str(policy or "strict")
    if policy not in POLICIES:
        raise ManifestError(
            f"unknown sanitize policy {policy!r}; choices: {', '.join(POLICIES)}"
        )
    return policy


def _config_overrides(
    config: Optional[Dict[str, float]],
) -> Tuple[Tuple[str, Union[float, str]], ...]:
    """Validate config overrides into the job's sorted-tuple form."""
    overrides: Dict[str, Union[float, str]] = {}
    for key, value in (config or {}).items():
        if key not in CONFIG_FIELDS:
            raise ManifestError(
                f"unknown config field {key!r}; choices: {', '.join(CONFIG_FIELDS)}"
            )
        if key in _STRING_FIELDS:
            try:
                overrides[key] = resolve_kernel(str(value))
            except ValueError as exc:
                raise ManifestError(str(exc)) from None
        else:
            try:
                overrides[key] = float(value)
            except (TypeError, ValueError) as exc:
                raise ManifestError(f"bad config value for {key!r}: {exc}") from None
    return tuple(sorted(overrides.items()))


def measurement_to_dict(m: Measurement) -> Dict:
    """JSON shape of one measurement: ``{"point": ..., "value": [m1, m2, alpha, beta]}``."""
    return {"point": m.point, "value": [m.value.m1, m.value.m2, m.value.alpha, m.value.beta]}


def measurement_from_dict(data: Dict) -> Measurement:
    """Inverse of :func:`measurement_to_dict`.

    Interval validation failures (non-finite numbers, inverted cores,
    negative slopes) surface as :class:`ManifestError` so the server can
    answer a structured 400 instead of a 500.
    """
    try:
        point = str(data["point"])
        m1, m2, alpha, beta = (float(x) for x in data["value"])
        value = FuzzyInterval(m1, m2, alpha, beta)
    except (KeyError, TypeError, ValueError) as exc:
        raise ManifestError(f"bad measurement spec {data!r}: {exc}") from None
    return Measurement(point, value)


@dataclass(frozen=True)
class DiagnosisJob:
    """One unit of fleet work: a circuit, its bench readings, the knobs.

    Attributes:
        unit: free-form label for reporting (not part of the hash).
        netlist_text: the golden design in the SPICE-subset card format.
        measurements: fuzzy readings as plain tuples.
        config: sorted ``(field, value)`` FlamesConfig overrides (values
            are floats, except the ``kernel`` name which is a string).
        confirm: optional ``(component, mode)`` the expert has verified
            on this unit — feeds the shared experience base after the
            batch (not part of the hash either).
        sanitize: measurement policy — ``"strict"`` (malformed readings
            are an error; the default and the pre-resilience behaviour)
            or ``"repair"`` (the resilience sanitizer drops/widens bad
            readings and the diagnosis runs degraded, flagged in the
            result).  Hashed only when not strict, so existing cache
            keys are unchanged.
    """

    unit: str
    netlist_text: str
    measurements: Tuple[MeasurementTuple, ...]
    config: Tuple[Tuple[str, Union[float, str]], ...] = ()
    confirm: Optional[Tuple[str, str]] = None
    sanitize: str = "strict"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        unit: str,
        circuit: Union[Circuit, str],
        measurements: Sequence[Measurement],
        config: Optional[Dict[str, float]] = None,
        confirm: Optional[Tuple[str, str]] = None,
        sanitize: str = "strict",
    ) -> "DiagnosisJob":
        """Build a job from rich objects (circuit and measurements)."""
        text = write_netlist(circuit) if isinstance(circuit, Circuit) else str(circuit)
        return cls(
            unit=unit,
            netlist_text=text,
            measurements=tuple(
                (m.point, m.value.m1, m.value.m2, m.value.alpha, m.value.beta)
                for m in measurements
            ),
            config=_config_overrides(config),
            confirm=tuple(confirm) if confirm else None,  # type: ignore[arg-type]
            sanitize=_resolve_sanitize(sanitize),
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def circuit(self) -> Circuit:
        """Parse the netlist (raises on malformed cards)."""
        return parse_netlist(self.netlist_text, name=self.unit or "unit")

    def to_measurements(self) -> List[Measurement]:
        return [
            Measurement(point, FuzzyInterval(m1, m2, alpha, beta))
            for point, m1, m2, alpha, beta in self.measurements
        ]

    def flames_config(self) -> FlamesConfig:
        overrides: Dict[str, object] = dict(self.config)
        if "assumable_nodes" in overrides:
            overrides["assumable_nodes"] = bool(overrides["assumable_nodes"])
        if "max_candidate_size" in overrides:
            overrides["max_candidate_size"] = int(overrides["max_candidate_size"])
        if "kernel" in overrides:
            overrides["kernel"] = str(overrides["kernel"])
        return FlamesConfig(**overrides)  # type: ignore[arg-type]

    @property
    def content_hash(self) -> str:
        """Deterministic sha256 of (circuit content, measurements, config).

        The circuit contributes through its order-independent
        :meth:`~repro.circuit.netlist.Circuit.fingerprint`; a netlist
        that does not parse falls back to hashing the raw text, so even
        a doomed job gets a stable cache key.
        """
        try:
            circuit_key = self.circuit().fingerprint()
        except Exception:
            circuit_key = "rawtext:" + hashlib.sha256(self.netlist_text.encode()).hexdigest()
        body = {
            "circuit": circuit_key,
            "measurements": sorted(self.measurements),
            "config": list(self.config),
        }
        if self.sanitize != "strict":
            # Conditional so pre-resilience jobs keep their exact keys.
            body["sanitize"] = self.sanitize
        payload = json.dumps(body, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def diagnosis_to_dict(
    result: DiagnosisResult,
    refinements: Optional[Sequence[ModeMatch]] = None,
) -> Dict:
    """Machine-readable view of a :class:`DiagnosisResult`.

    This is the JSON shape printed by ``python -m repro diagnose
    --json`` and embedded in every fleet :class:`JobResult`; its
    ``measurements`` entries use the same shape a batch manifest
    accepts, so outputs can be replayed as inputs.
    """
    from repro.core.learning import SymptomSignature

    stats = {
        "propagation_steps": result.propagation.steps if result.propagation else 0,
        "quiescent": bool(result.propagation.quiescent) if result.propagation else True,
        "nogoods": len(result.nogoods),
        "conflicts": len(result.conflicts),
    }
    # Conditional so uninterrupted payloads keep the exact pre-runtime
    # key set (the golden snapshots compare keys byte-for-byte).
    if result.interrupted:
        stats["interrupted"] = True
    return {
        "status": "consistent" if result.is_consistent else "faulty",
        "measurements": [measurement_to_dict(m) for m in result.measurements],
        "consistencies": {
            point: {"degree": cons.degree, "direction": cons.direction, "signed": cons.signed}
            for point, cons in result.consistencies.items()
        },
        "suspicions": dict(result.ranked_components()),
        "nogoods": [
            {"components": sorted(a.datum for a in ng.environment), "degree": ng.degree}
            for ng in result.nogoods
        ],
        "candidates": [
            {"components": list(d.components), "degree": d.degree} for d in result.diagnoses
        ],
        "refinements": [
            {"component": r.component, "mode": r.mode, "degree": r.degree}
            for r in (refinements or [])
        ],
        "signature": SymptomSignature.from_result(result).to_list(),
        "stats": stats,
    }


@dataclass
class JobResult:
    """Structured outcome of one job — success, failure or timeout.

    ``diagnosis`` carries the :func:`diagnosis_to_dict` payload for ok
    results and is empty for error/timeout ones; either way the batch
    completes and every unit gets an entry.  ``interrupted`` results
    carry the *partial* payload the engine wound down with — well-formed
    but incomplete, so the service never caches them.  ``trace`` holds
    the engine's span tree when the run was traced (empty otherwise).
    """

    unit: str
    content_hash: str
    status: str  # "ok" | "degraded" | "error" | "timeout" | "interrupted" | "quarantined"
    diagnosis: Dict = field(default_factory=dict)
    error: str = ""
    elapsed: float = 0.0
    attempts: int = 1
    cache_hit: bool = False
    trace: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def completed(self) -> bool:
        """The diagnosis ran to quiescence: ``ok`` or ``degraded``.

        A ``degraded`` result is complete *with respect to its sanitized
        inputs* — ranked, classified, cacheable — but some observations
        were dropped or widened on the way in (the actions are listed
        under ``diagnosis["degraded"]``).
        """
        return self.status in ("ok", "degraded")

    @property
    def is_consistent(self) -> bool:
        return self.diagnosis.get("status") == "consistent"

    def candidates(self) -> List[Tuple[str, float]]:
        """Ranked (component, suspicion) pairs of an ok result."""
        return sorted(
            self.diagnosis.get("suspicions", {}).items(), key=lambda kv: (-kv[1], kv[0])
        )

    def signature_entries(self) -> Optional[List]:
        return self.diagnosis.get("signature")

    def relabel(self, unit: str, cache_hit: bool = True) -> "JobResult":
        """A copy serving another unit with identical content (a cache hit)."""
        return JobResult(
            unit=unit,
            content_hash=self.content_hash,
            status=self.status,
            diagnosis=self.diagnosis,
            error=self.error,
            elapsed=0.0,
            attempts=0,
            cache_hit=cache_hit,
        )

    def to_dict(self) -> Dict:
        data = {
            "unit": self.unit,
            "content_hash": self.content_hash,
            "status": self.status,
            "diagnosis": self.diagnosis,
            "error": self.error,
            "elapsed": self.elapsed,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
        }
        if self.trace:
            data["trace"] = self.trace
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "JobResult":
        return cls(
            unit=str(data.get("unit", "")),
            content_hash=str(data.get("content_hash", "")),
            status=str(data["status"]),
            diagnosis=dict(data.get("diagnosis", {})),
            error=str(data.get("error", "")),
            elapsed=float(data.get("elapsed", 0.0)),
            attempts=int(data.get("attempts", 1)),
            cache_hit=bool(data.get("cache_hit", False)),
            trace=dict(data.get("trace", {})),
        )


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
def job_from_spec(
    spec: Dict, index: int = 0, base_dir: Optional[Path] = None
) -> DiagnosisJob:
    """Turn one JSON job spec into a :class:`DiagnosisJob`.

    ``base_dir`` anchors relative ``netlist`` paths; when it is None —
    the diagnosis server parsing an untrusted network request — path
    specs are rejected outright and the design must arrive inline as
    ``netlist_text``.  Raises :class:`ManifestError` on any bad spec.
    """
    if not isinstance(spec, dict):
        raise ManifestError(f"job #{index}: expected an object, got {type(spec).__name__}")
    unit = str(spec.get("unit", f"unit-{index:03d}"))

    if "netlist_text" in spec:
        text = str(spec["netlist_text"])
    elif "netlist" in spec:
        if base_dir is None:
            raise ManifestError(
                f"job {unit!r}: 'netlist' file paths are not accepted here; "
                "inline the design as 'netlist_text'"
            )
        path = Path(spec["netlist"])
        if not path.is_absolute():
            path = base_dir / path
        try:
            text = path.read_text()
        except OSError as exc:
            raise ManifestError(f"job {unit!r}: cannot read netlist {path}: {exc}") from None
    else:
        raise ManifestError(f"job {unit!r}: needs 'netlist' (path) or 'netlist_text'")

    sanitize = _resolve_sanitize(spec.get("sanitize", "strict"))
    try:
        imprecision = float(spec.get("imprecision", 0.02))
    except (TypeError, ValueError) as exc:
        raise ManifestError(f"job {unit!r}: bad imprecision: {exc}") from None

    # Collect the raw (point, m1, m2, alpha, beta) tuples first.  Under
    # the strict policy each one must construct a valid FuzzyInterval
    # right here (malformed readings → ManifestError → HTTP 400); under
    # "repair" the resilience sanitizer vets them at execution time
    # instead, so a non-finite reading degrades the run rather than
    # rejecting it.
    raw: List[MeasurementTuple] = []
    for net, volts in (spec.get("probes") or {}).items():
        try:
            value = float(volts)
        except (TypeError, ValueError) as exc:
            raise ManifestError(f"job {unit!r}: bad probe V({net}): {exc}") from None
        raw.append((f"V({net})", value, value, imprecision, imprecision))
    for entry in spec.get("measurements") or []:
        try:
            point = str(entry["point"])
            m1, m2, alpha, beta = (float(x) for x in entry["value"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"bad measurement spec {entry!r}: {exc}") from None
        raw.append((point, m1, m2, alpha, beta))
    if not raw:
        raise ManifestError(f"job {unit!r}: needs 'probes' and/or 'measurements'")
    if sanitize == "strict":
        for point, m1, m2, alpha, beta in raw:
            try:
                FuzzyInterval(m1, m2, alpha, beta)
            except ValueError as exc:
                raise ManifestError(
                    f"job {unit!r}: bad measurement at {point}: {exc}"
                ) from None

    confirm = None
    if spec.get("confirm"):
        c = spec["confirm"]
        if not isinstance(c, dict) or "component" not in c:
            raise ManifestError(f"job {unit!r}: 'confirm' needs a 'component'")
        confirm = (str(c["component"]), str(c.get("mode", "")))

    return DiagnosisJob(
        unit=unit,
        netlist_text=text,
        measurements=tuple(raw),
        config=_config_overrides(spec.get("config")),
        confirm=confirm,
        sanitize=sanitize,
    )


def load_manifest(path: Union[str, Path]) -> List[DiagnosisJob]:
    """Read a batch manifest: ``{"jobs": [...]}`` or a bare job list.

    Each job spec gives a ``unit`` label, the golden design as a
    ``netlist`` path (relative to the manifest) or inline
    ``netlist_text``, readings as ``probes`` (``{"net": volts}`` with an
    optional ``imprecision``, mirroring ``diagnose --probe``) and/or
    explicit fuzzy ``measurements`` (the ``diagnose --json`` shape),
    plus optional ``config`` overrides and a ``confirm``-ed repair.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ManifestError(f"cannot read manifest {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ManifestError(f"manifest {path} is not valid JSON: {exc}") from None
    specs = data.get("jobs") if isinstance(data, dict) else data
    if not isinstance(specs, list) or not specs:
        raise ManifestError(f"manifest {path} holds no jobs")
    base = path.resolve().parent
    return [job_from_spec(spec, i, base) for i, spec in enumerate(specs)]
