"""The fleet engine: fan diagnosis jobs out over a worker pool.

``FleetEngine.run_batch`` is the throughput pipeline the single
:class:`~repro.core.session.TroubleshootingSession` never had:

1. **hash** — every job gets its deterministic content hash;
2. **cache** — previously diagnosed content replays instantly; within
   the batch, duplicated content is deduplicated so one *leader* job
   computes and its *followers* replay the stored result;
3. **execute** — leaders run through a ``concurrent.futures`` pool
   (process by default — diagnosis is pure CPU — or thread/serial),
   with a per-job timeout and a bounded retry on failure.  A crashing
   job yields a structured ``error`` result; it never kills the batch;
4. **merge** — expert-confirmed repairs are folded into the engine's
   shared :class:`~repro.core.learning.ExperienceBase` via
   :meth:`~repro.core.learning.ExperienceBase.merge`, so the whole
   fleet learns from every shop.

Jobs are plain data (see :mod:`repro.service.jobs`), so nothing but
picklable payloads ever crosses a process boundary.

**Resilience plane** (see :mod:`repro.resilience` and README
"Resilience"): an optional :class:`FleetSupervisor` quarantines
poison jobs after repeated failures (a quarantined job returns a
structured ``quarantined`` result and never re-enters the retry loop),
scores worker health and proactively evicts/restarts a sick pool; the
kernel **circuit breaker** falls back from the fast kernel to the
reference engine on any exception (or differential mismatch, with
``verify_kernel``), recording the trip in telemetry; and a seeded
:class:`~repro.resilience.faults.FaultPlan` injects worker crashes,
hangs, slow responses and malformed measurements at named points so
chaos tests exercise every one of those paths deterministically.
"""

from __future__ import annotations

import logging
import threading
import time
import traceback
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.db import DiagnosisStore
    from repro.store.lifecycle import StoreMaintenance

from repro.core.diagnosis import Flames
from repro.core.knowledge import KnowledgeBase
from repro.core.learning import Episode, ExperienceBase, SymptomSignature
from repro.fuzzy import FuzzyInterval
from repro.circuit.measurements import Measurement
from repro.resilience import faults
from repro.resilience.sanitize import SanitizeReport, sanitize_tuples
from repro.resilience.supervisor import CircuitBreaker, FleetSupervisor, worker_breaker
from repro.runtime.context import RunContext
from repro.service.cache import ResultCache
from repro.service.jobs import DiagnosisJob, JobResult, diagnosis_to_dict
from repro.service.telemetry import Telemetry

__all__ = ["FleetEngine", "BatchReport", "execute_job"]

log = logging.getLogger("repro.service")

EXECUTORS = ("process", "thread", "serial")


def _diagnose_with_breaker(
    job: DiagnosisJob,
    circuit,
    measurements: List[Measurement],
    ctx: Optional[RunContext],
    breaker: Optional[CircuitBreaker],
    verify_kernel: bool,
    payload: Dict,
):
    """Run the diagnosis, routing the fast kernel through its breaker.

    The reference kernel is the trusted substrate; the fast kernel is an
    optimisation that must never be a liability.  Any exception raised
    while the fast kernel is engaged counts against the breaker and the
    job transparently re-runs on the reference engine; with
    ``verify_kernel`` a completed fast run is additionally replayed on
    the reference engine and a differential mismatch counts as a breaker
    failure too (the reference result wins).  Breaker state transitions
    are annotated onto ``payload`` so the engine folds them into
    telemetry from any executor kind.
    """
    config = job.flames_config()
    if config.kernel != "fast":
        return Flames(circuit, config).diagnose(measurements, ctx=ctx)
    if breaker is None:
        breaker = worker_breaker()
    if not breaker.allow():
        # Breaker open: bypass the fast kernel entirely.
        breaker.record_bypass()
        payload["kernel"] = "reference"
        payload["kernel_fallback"] = "breaker-open"
        config = replace(config, kernel="reference")
        return Flames(circuit, config).diagnose(measurements, ctx=ctx)
    try:
        result = Flames(circuit, config).diagnose(measurements, ctx=ctx)
    except Exception as exc:
        tripped = breaker.record_failure()
        payload["kernel"] = "reference"
        payload["kernel_fallback"] = f"exception: {type(exc).__name__}: {exc}"
        if tripped:
            payload["kernel_tripped"] = True
        config = replace(config, kernel="reference")
        return Flames(circuit, config).diagnose(measurements, ctx=ctx)
    if verify_kernel and not result.interrupted:
        reference = Flames(circuit, replace(config, kernel="reference")).diagnose(
            measurements, ctx=None
        )
        if diagnosis_to_dict(result) != diagnosis_to_dict(reference):
            tripped = breaker.record_failure()
            payload["kernel"] = "reference"
            payload["kernel_fallback"] = "differential-mismatch"
            if tripped:
                payload["kernel_tripped"] = True
            return reference
    breaker.record_success()
    return result


def execute_job(
    job: DiagnosisJob,
    deadline_seconds: Optional[float] = None,
    tracing: bool = False,
    ctx: Optional[RunContext] = None,
    fault_plan: Optional[faults.FaultPlan] = None,
    breaker: Optional[CircuitBreaker] = None,
    verify_kernel: bool = False,
) -> Dict:
    """Run one job to a plain-dict outcome (the worker entry point).

    Module-level and dealing only in plain data so it pickles into
    worker processes; the deadline crosses the boundary *in-band* as
    ``deadline_seconds`` (a :class:`RunContext` is built worker-side),
    so a budgeted job winds down cooperatively inside the pool instead
    of burning CPU after its future is abandoned.  An in-process caller
    (the server's executor thread) may pass a live ``ctx`` instead —
    sharing its cancel token — which takes precedence.  Exceptions are
    converted into an ``error`` payload — a crashing job must produce a
    result, not a dead pool.

    ``fault_plan`` (plain data, so it crosses the pickle boundary) arms
    the worker's deterministic injection points; ``breaker`` routes the
    fast kernel through the caller's circuit breaker (worker processes,
    which cannot share one, fall back to a process-local breaker).
    """
    start = time.perf_counter()
    if fault_plan is not None and faults.active_plan() != fault_plan:
        faults.install_plan(fault_plan)
    if ctx is None and (deadline_seconds is not None or tracing):
        ctx = RunContext.with_timeout(deadline_seconds, tracing=tracing)
    payload: Dict = {}
    try:
        with faults.key_scope(job.content_hash):
            # --- chaos: the worker-level injection points -------------
            faults.maybe_exit("pool.worker_exit")
            faults.maybe_raise("pool.worker_crash")
            faults.maybe_sleep("pool.worker_hang")
            faults.maybe_sleep("pool.slow_response")

            raw = list(job.measurements)
            if raw and faults.maybe_fire("measurement.malformed") is not None:
                # A glitched bench: the first reading turns non-finite.
                point = raw[0][0]
                raw[0] = (point, float("nan"), float("nan"), 0.0, 0.0)

            report = SanitizeReport()
            if job.sanitize == "repair":
                raw, report = sanitize_tuples(raw)
                if not raw:
                    return {
                        "status": "error",
                        "error": "sanitizer dropped every measurement: "
                        + "; ".join(a.reason for a in report.actions),
                        "degraded": report.to_dict(),
                        "elapsed": time.perf_counter() - start,
                    }
            circuit = job.circuit()
            measurements = [
                Measurement(point, FuzzyInterval(m1, m2, alpha, beta))
                for point, m1, m2, alpha, beta in raw
            ]
            result = _diagnose_with_breaker(
                job, circuit, measurements, ctx, breaker, verify_kernel, payload
            )
            refinements = None
            if not result.is_consistent and not result.interrupted:
                refinements = KnowledgeBase(circuit).refine(
                    result.suspicions, measurements, top_k=5
                )
            if result.interrupted:
                status = "interrupted"
            elif report.degraded:
                status = "degraded"
            else:
                status = "ok"
            payload.update(
                {
                    "status": status,
                    "diagnosis": diagnosis_to_dict(result, refinements),
                    "elapsed": time.perf_counter() - start,
                }
            )
            if report.degraded:
                payload["diagnosis"]["degraded"] = report.to_dict()
            if result.interrupted and ctx is not None:
                payload["error"] = f"run interrupted: {ctx.stop_reason or 'stopped'}"
            if result.trace:
                payload["trace"] = result.trace
            return payload
    except Exception as exc:
        tail = traceback.format_exc(limit=3)
        payload.update(
            {
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}\n{tail}",
                "elapsed": time.perf_counter() - start,
            }
        )
        return payload


@dataclass
class BatchReport:
    """Everything one ``run_batch`` produced, in job order."""

    results: List[JobResult]
    telemetry: Dict = field(default_factory=dict)
    cache: Dict = field(default_factory=dict)
    wall_clock: float = 0.0
    rules_learned: int = 0

    @property
    def ok(self) -> List[JobResult]:
        return [r for r in self.results if r.status == "ok"]

    @property
    def completed(self) -> List[JobResult]:
        """Results whose diagnosis ran to quiescence (``ok`` + ``degraded``)."""
        return [r for r in self.results if r.completed]

    @property
    def failed(self) -> List[JobResult]:
        return [r for r in self.results if not r.completed]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cache_hit)

    def to_dict(self) -> Dict:
        return {
            "results": [r.to_dict() for r in self.results],
            "telemetry": self.telemetry,
            "cache": self.cache,
            "wall_clock": self.wall_clock,
            "rules_learned": self.rules_learned,
        }


class FleetEngine:
    """Batched parallel diagnosis with caching, retries and telemetry.

    Args:
        workers: pool width (>= 1).
        executor: ``"process"`` (default — diagnosis is CPU-bound),
            ``"thread"`` (cheap startup; useful for tests and small
            batches) or ``"serial"`` (inline, no pool at all).
        timeout: per-job seconds.  The budget travels *in-band*: each
            worker builds a :class:`RunContext` deadline and winds down
            cooperatively, yielding a partial ``interrupted`` result.
            The pool keeps a hard backstop (``timeout`` plus a grace
            period) for jobs stuck outside the cooperative loop — those
            still yield a ``timeout`` result and may linger until the
            batch ends.  ``None`` = unbounded.
        retries: extra attempts granted to a job whose worker crashed
            or whose pool broke (timeouts and interruptions are not
            retried).
        tracing: collect engine span trees on every job; traces ride on
            the results and fold into the telemetry phase table.
        cache: shared :class:`ResultCache` (one is built when omitted);
            persists across batches for warm-pass speedups.
        cache_size: capacity of the built cache when ``cache`` is None.
        telemetry: shared :class:`Telemetry` (one is built when omitted).
        experience: the shared fleet :class:`ExperienceBase` that
            confirmed repairs merge into after every batch.
        supervisor: the resilience plane's :class:`FleetSupervisor`
            (quarantine + worker health + kernel breaker).  ``None``
            (the default) preserves the pre-resilience retry semantics
            exactly; pass ``FleetSupervisor()`` — or use
            ``supervise=True`` on the CLI — to engage it.
        fault_plan: a deterministic :class:`~repro.resilience.faults.
            FaultPlan` armed in every worker (chaos testing only).
        verify_kernel: differentially check every completed fast-kernel
            run against the reference engine; a mismatch counts as a
            breaker failure and the reference result wins.  Expensive —
            chaos/soak runs only.
        store: an optional :class:`~repro.store.db.DiagnosisStore` — the
            persistence plane.  When armed (and no explicit ``cache``
            was passed) the result cache becomes the two-tier
            :class:`~repro.store.cache.PersistentResultCache`, the
            shared experience base is restored from the store at boot
            (its restored occurrence counts are kept in
            ``experience_seed`` so gossip can tell restored from fresh),
            every merge writes through per tenant, and each result
            appends a diagnosis-history row.  ``None`` (the default)
            keeps everything in-memory and byte-identical to before.
        disk_cache_size: row bound of the store's cache table when the
            engine builds the persistent cache itself.
        maintenance: an optional
            :class:`~repro.store.lifecycle.StoreMaintenance` driven
            *opportunistically*: after each batch the engine calls
            ``maybe_tick()``, which checkpoints/retains only once the
            configured interval has elapsed — batch mode gets store
            upkeep amortised into the workload, with no extra thread.
    """

    def __init__(
        self,
        workers: int = 4,
        executor: str = "process",
        timeout: Optional[float] = None,
        retries: int = 1,
        cache: Optional[ResultCache] = None,
        cache_size: int = 256,
        telemetry: Optional[Telemetry] = None,
        experience: Optional[ExperienceBase] = None,
        tracing: bool = False,
        supervisor: Optional[FleetSupervisor] = None,
        fault_plan: Optional[faults.FaultPlan] = None,
        verify_kernel: bool = False,
        store: "Optional[DiagnosisStore]" = None,
        disk_cache_size: int = 4096,
        maintenance: "Optional[StoreMaintenance]" = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.workers = workers
        self.executor_kind = executor
        self.timeout = timeout
        self.retries = retries
        self.store = store
        self.maintenance = maintenance
        if cache is None and store is not None:
            from repro.store.cache import PersistentResultCache

            cache = PersistentResultCache(
                store, capacity=cache_size, disk_capacity=disk_cache_size
            )
        self.cache = cache if cache is not None else ResultCache(cache_size)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: rule identity -> occurrences restored from the store at boot.
        #: Gossip peers subtract this baseline so a restarted replica
        #: never re-reports persisted occurrences as fresh evidence.
        self.experience_seed: Dict[str, int] = {}
        self.experience_seed_episodes = 0
        if experience is None and store is not None:
            from repro.core.learning import rule_identity
            from repro.store.db import PUBLIC_TENANT

            data, _version = store.load_experience(PUBLIC_TENANT)
            experience = ExperienceBase.from_dict(data)
            self.experience_seed = {
                rule_identity(r.signature, r.component, r.mode): r.occurrences
                for r in experience.rules
            }
            self.experience_seed_episodes = int(data.get("episode_count", 0))
        self.experience = experience if experience is not None else ExperienceBase()
        #: tenant id -> that tenant's isolated base, lazily restored.
        self._tenant_experience: Dict[str, ExperienceBase] = {}
        self._experience_lock = threading.Lock()
        self.tracing = bool(tracing)
        self.supervisor = supervisor
        if supervisor is not None and supervisor.telemetry is None:
            supervisor.telemetry = self.telemetry
        self.fault_plan = fault_plan
        if fault_plan is not None:
            # Arm the engine's own process too (serial/thread executors,
            # the cache's corruption point); workers re-arm from the
            # pickled plan in execute_job.
            faults.install_plan(fault_plan)
        self.verify_kernel = bool(verify_kernel)

    # ------------------------------------------------------------------
    # The pipeline
    # ------------------------------------------------------------------
    def run_batch(
        self, jobs: Sequence[DiagnosisJob], tenant: Optional[str] = None
    ) -> BatchReport:
        """Diagnose a fleet; returns one result per job, in job order.

        ``tenant`` namespaces the cache lookups and the experience merge
        (``None`` = the shared public pool, the pre-tenant behavior).
        Results always carry the *raw* content hash — tenancy changes
        where state lands, never what a diagnosis says.
        """
        started = time.perf_counter()
        tel = self.telemetry
        tel.incr("batches")
        tel.incr("jobs_submitted", len(jobs))

        with tel.phase("fleet.hash"):
            hashes = [job.content_hash for job in jobs]

        results: Dict[int, JobResult] = {}
        leaders: Dict[str, int] = {}
        followers: Dict[str, List[int]] = {}
        with tel.phase("fleet.cache"):
            for index, (job, key) in enumerate(zip(jobs, hashes)):
                if self.supervisor is not None and self.supervisor.is_quarantined(key):
                    results[index] = self._quarantined_result(job, key)
                    continue
                cached = self.cache.get(self._cache_key(key, tenant))
                if cached is not None:
                    results[index] = cached.relabel(job.unit)
                elif key in leaders:
                    followers.setdefault(key, []).append(index)
                else:
                    leaders[key] = index

        with tel.phase("fleet.execute"):
            executed = self._execute({key: jobs[i] for key, i in leaders.items()})

        for key, index in leaders.items():
            outcome = executed[key]
            results[index] = outcome
            if outcome.completed:
                self.cache.put(self._cache_key(key, tenant), outcome)
            for follower in followers.get(key, []):
                if outcome.completed:
                    # Replay through the cache so in-batch duplicates are
                    # counted exactly like warm-pass hits.
                    stored = self.cache.get(self._cache_key(key, tenant))
                    if stored is not None:
                        results[follower] = stored.relabel(jobs[follower].unit)
                        continue
                results[follower] = outcome.relabel(jobs[follower].unit, cache_hit=False)

        ordered = [results[i] for i in range(len(jobs))]

        with tel.phase("fleet.merge"):
            learned = self._merge_experience(jobs, ordered, tenant=tenant)

        for res in ordered:
            self._record_result(res, tenant=tenant)
        cache_snap = self.cache.snapshot()
        tel.incr("cache_hits", cache_snap["hits"] - tel.counter("cache_hits"))
        tel.incr("cache_hits_mem", cache_snap["hits_mem"] - tel.counter("cache_hits_mem"))
        tel.incr(
            "cache_hits_disk", cache_snap["hits_disk"] - tel.counter("cache_hits_disk")
        )
        tel.incr("cache_misses", cache_snap["misses"] - tel.counter("cache_misses"))

        wall = time.perf_counter() - started
        tel.observe("batch_seconds", wall)
        if self.maintenance is not None:
            # Opportunistic store upkeep between batches (interval-gated
            # inside maybe_tick; a no-op until it's due).
            self.maintenance.maybe_tick()
        return BatchReport(
            results=ordered,
            telemetry=tel.snapshot(),
            cache=cache_snap,
            wall_clock=wall,
            rules_learned=learned,
        )

    def run_job(
        self,
        job: DiagnosisJob,
        ctx: Optional[RunContext] = None,
        tenant: Optional[str] = None,
    ) -> JobResult:
        """Diagnose one unit synchronously through the shared state.

        The long-lived-owner entry point the diagnosis server calls from
        its executor threads: cache lookup, inline execution with the
        engine's retry budget, cache fill, experience merge and
        telemetry — the ``run_batch`` pipeline for a fleet of one,
        without spinning up a pool.  Thread-safe: cache, telemetry and
        experience each guard themselves.  A caller-supplied ``ctx``
        carries the request's deadline, cancel token and trace id into
        the engine (the server's per-request budget); otherwise the
        engine's own ``timeout``/``tracing`` settings apply.  ``tenant``
        namespaces cache and experience exactly as in ``run_batch``;
        quarantine stays keyed on the raw content hash (a poison job is
        poison for everyone).
        """
        tel = self.telemetry
        key = job.content_hash
        if self.supervisor is not None and self.supervisor.is_quarantined(key):
            result = self._quarantined_result(job, key)
            self._record_result(result, tenant=tenant)
            return result
        cached = self.cache.get(self._cache_key(key, tenant))
        if cached is not None:
            result = cached.relabel(job.unit)
        else:
            attempts = 0
            quarantined = False
            while True:
                attempts += 1
                payload = execute_job(
                    job,
                    deadline_seconds=self.timeout,
                    tracing=self.tracing,
                    ctx=ctx,
                    fault_plan=self.fault_plan,
                    breaker=self._breaker(),
                    verify_kernel=self.verify_kernel,
                )
                quarantined = self._note_attempt(key, payload)
                if quarantined or payload["status"] != "error" or attempts > self.retries:
                    break
                tel.incr("retries")
            if quarantined:
                result = self._quarantined_result(job, key, attempts=attempts)
            else:
                result = self._to_result(job, key, payload, attempts)
            if result.completed:
                # Interrupted results are partial: never cached.
                self.cache.put(self._cache_key(key, tenant), result)
        self._merge_experience([job], [result], tenant=tenant)
        self._record_result(result, tenant=tenant)
        return result

    def _cache_key(self, content_hash: str, tenant: Optional[str]) -> str:
        """The cache key ``tenant`` sees for this content (raw when public)."""
        if tenant is None:
            return content_hash
        from repro.store.cache import namespaced_key

        return namespaced_key(content_hash, tenant)

    def _breaker(self) -> Optional[CircuitBreaker]:
        """The in-process kernel breaker (None without a supervisor)."""
        return self.supervisor.breaker if self.supervisor is not None else None

    def _quarantined_result(
        self, job: DiagnosisJob, key: str, attempts: int = 0
    ) -> JobResult:
        assert self.supervisor is not None
        return JobResult(
            unit=job.unit,
            content_hash=key,
            status="quarantined",
            error=self.supervisor.quarantine_reason(key),
            attempts=attempts,
            cache_hit=False,
        )

    def _note_attempt(self, key: str, payload: Dict) -> bool:
        """Score one attempt with the supervisor; True once quarantined."""
        if self.supervisor is None:
            return False
        status = payload.get("status")
        functioned = status in ("ok", "degraded", "interrupted")
        self.supervisor.record_worker_outcome(functioned)
        if functioned:
            self.supervisor.record_job_success(key)
            return False
        return self.supervisor.record_failure(key, str(payload.get("error", "")))

    def _record_result(self, res: JobResult, tenant: Optional[str] = None) -> None:
        """Per-result counters shared by ``run_batch`` and ``run_job``."""
        tel = self.telemetry
        tel.incr(f"jobs_{res.status}")
        self._record_history(res, tenant)
        if res.cache_hit:
            return
        if res.elapsed:
            tel.observe("job_seconds", res.elapsed)
        stats = res.diagnosis.get("stats", {})
        if stats:
            tel.incr("propagation_passes")
            tel.incr("propagation_steps", stats.get("propagation_steps", 0))
            tel.incr("nogoods_found", stats.get("nogoods", 0))
        if res.trace:
            tel.record_trace(res.trace)

    def _record_history(self, res: JobResult, tenant: Optional[str]) -> None:
        """Append one diagnosis-history row when the store is armed.

        History is reporting, not diagnosis: a failed write degrades the
        fleet-health report (and counts ``history_write_errors``), it
        never fails the job.
        """
        if self.store is None:
            return
        from repro.store.db import PUBLIC_TENANT

        candidates = res.candidates()
        try:
            self.store.record_history(
                tenant or PUBLIC_TENANT,
                res.unit,
                res.content_hash,
                res.status,
                res.is_consistent,
                candidates[0][0] if candidates else "",
                res.elapsed,
                res.cache_hit,
            )
        except Exception as exc:
            self.telemetry.incr("history_write_errors")
            log.warning("history write failed: %s: %s", type(exc).__name__, exc)

    # ------------------------------------------------------------------
    # Execution with retry / timeout / graceful degradation
    # ------------------------------------------------------------------
    def _execute(self, pending: Dict[str, DiagnosisJob]) -> Dict[str, JobResult]:
        if not pending:
            return {}
        if self.executor_kind == "serial":
            return self._execute_serial(pending)
        return self._execute_pooled(pending)

    def _execute_serial(self, pending: Dict[str, DiagnosisJob]) -> Dict[str, JobResult]:
        results: Dict[str, JobResult] = {}
        for key, job in pending.items():
            attempts = 0
            while True:
                attempts += 1
                payload = execute_job(
                    job,
                    deadline_seconds=self.timeout,
                    tracing=self.tracing,
                    fault_plan=self.fault_plan,
                    breaker=self._breaker(),
                    verify_kernel=self.verify_kernel,
                )
                if self._note_attempt(key, payload):
                    results[key] = self._quarantined_result(job, key, attempts=attempts)
                    break
                if payload["status"] != "error" or attempts > self.retries:
                    results[key] = self._to_result(job, key, payload, attempts)
                    break
                self.telemetry.incr("retries")
        return results

    def _execute_pooled(self, pending: Dict[str, DiagnosisJob]) -> Dict[str, JobResult]:
        results: Dict[str, JobResult] = {}
        attempts = {key: 0 for key in pending}
        executor = self._make_executor()
        # Worker processes cannot share the supervisor's breaker object;
        # they fall back to a process-local one inside execute_job.
        breaker = self._breaker() if self.executor_kind == "thread" else None
        # The deadline travels in-band (the worker winds down on its own);
        # the pool-side wait adds a grace period and acts as a hard-kill
        # backstop for jobs hung outside the cooperative loop.
        backstop = (
            self.timeout + max(1.0, 0.25 * self.timeout)
            if self.timeout is not None
            else None
        )
        try:
            while pending:
                futures: Dict[str, Future] = {}
                for key, job in pending.items():
                    attempts[key] += 1
                    try:
                        futures[key] = executor.submit(
                            execute_job, job, self.timeout, self.tracing,
                            None, self.fault_plan, breaker, self.verify_kernel,
                        )
                    except (BrokenExecutor, RuntimeError):
                        executor = self._revive(executor)
                        futures[key] = executor.submit(
                            execute_job, job, self.timeout, self.tracing,
                            None, self.fault_plan, breaker, self.verify_kernel,
                        )
                retry: Dict[str, DiagnosisJob] = {}
                for key, future in futures.items():
                    job = pending[key]
                    timed_out = False
                    try:
                        payload = future.result(timeout=backstop)
                    except FuturesTimeoutError:
                        future.cancel()
                        timed_out = True
                        payload = {
                            "status": "timeout",
                            "error": f"job exceeded the {self.timeout:g}s budget",
                            "elapsed": float(self.timeout or 0.0),
                        }
                        self.telemetry.event("timeout", unit=job.unit, hash=key[:12])
                    except BrokenExecutor as exc:
                        executor = self._revive(executor)
                        payload = {
                            "status": "error",
                            "error": f"worker pool broke: {exc!r}",
                            "elapsed": 0.0,
                        }
                    except Exception as exc:  # unpicklable result, cancellation, ...
                        self.telemetry.incr("jobs_internal_error")
                        log.warning(
                            "job %s raised outside the worker body: %s: %s",
                            job.unit, type(exc).__name__, exc,
                        )
                        payload = {
                            "status": "error",
                            "error": f"{type(exc).__name__}: {exc}",
                            "elapsed": 0.0,
                        }
                    quarantined = self._note_attempt(key, payload)
                    failed = payload["status"] == "error"
                    if quarantined:
                        results[key] = self._quarantined_result(
                            job, key, attempts=attempts[key]
                        )
                    elif failed and not timed_out and attempts[key] <= self.retries:
                        retry[key] = job
                        self.telemetry.incr("retries")
                    else:
                        results[key] = self._to_result(job, key, payload, attempts[key])
                if self.supervisor is not None and self.supervisor.should_evict():
                    # Sustained crashes/hangs: evict the sick pool and
                    # restart fresh before the next round.
                    executor = self._revive(executor)
                    self.supervisor.record_eviction()
                pending = retry
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return results

    def _make_executor(self):
        if self.executor_kind == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return ProcessPoolExecutor(max_workers=self.workers)

    def _revive(self, executor):
        """Replace a broken pool (graceful degradation, not batch death)."""
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception as exc:
            # Even a failed shutdown must not kill the batch, but it is
            # an internal fault worth surfacing, not swallowing.
            self.telemetry.incr("jobs_internal_error")
            self.telemetry.event(
                "internal_error", where="pool_shutdown", error=f"{type(exc).__name__}: {exc}"
            )
            log.warning("broken pool shutdown failed: %s: %s", type(exc).__name__, exc)
        self.telemetry.incr("pool_restarts")
        return self._make_executor()

    def _to_result(
        self, job: DiagnosisJob, key: str, payload: Dict, attempts: int
    ) -> JobResult:
        result = JobResult(
            unit=job.unit,
            content_hash=key,
            status=str(payload["status"]),
            diagnosis=dict(payload.get("diagnosis") or {}),
            error=str(payload.get("error", "")),
            elapsed=float(payload.get("elapsed", 0.0)),
            attempts=attempts,
            cache_hit=False,
            trace=dict(payload.get("trace") or {}),
        )
        fallback = payload.get("kernel_fallback")
        if fallback:
            self.telemetry.incr("kernel_fallbacks")
            if payload.get("kernel_tripped"):
                self.telemetry.incr("kernel_breaker_trips")
                self.telemetry.event(
                    "kernel_breaker_trip", unit=job.unit, reason=str(fallback)
                )
        if result.status == "degraded":
            self.telemetry.event(
                "job_degraded",
                unit=job.unit,
                dropped=len(result.diagnosis.get("degraded", {}).get("dropped", [])),
                widened=len(result.diagnosis.get("degraded", {}).get("widened", [])),
            )
        if not result.completed:
            self.telemetry.event(
                "job_failed",
                unit=job.unit,
                status=result.status,
                attempts=attempts,
                error=result.error.splitlines()[0] if result.error else "",
            )
        return result

    # ------------------------------------------------------------------
    # Experience merge
    # ------------------------------------------------------------------
    def _experience_for(self, tenant: Optional[str]) -> ExperienceBase:
        """The base ``tenant`` learns into (lazily restored from the store).

        Call with the experience lock held.
        """
        if tenant is None:
            return self.experience
        base = self._tenant_experience.get(tenant)
        if base is None:
            if self.store is not None:
                data, _version = self.store.load_experience(tenant)
                base = ExperienceBase.from_dict(data)
            else:
                base = ExperienceBase(base_certainty=self.experience.base_certainty)
            self._tenant_experience[tenant] = base
        return base

    def _persist_experience(self, tenant: Optional[str], delta: Dict) -> None:
        """Write one merge delta through to the store (when armed)."""
        if self.store is None:
            return
        from repro.store.db import PUBLIC_TENANT

        try:
            self.store.merge_experience(tenant or PUBLIC_TENANT, delta)
        except Exception as exc:
            self.telemetry.incr("experience_write_errors")
            log.warning("experience write failed: %s: %s", type(exc).__name__, exc)

    def _merge_experience(
        self,
        jobs: Sequence[DiagnosisJob],
        results: Sequence[JobResult],
        tenant: Optional[str] = None,
    ) -> int:
        """Fold the batch's confirmed repairs into the tenant's base."""
        batch = ExperienceBase(base_certainty=self.experience.base_certainty)
        for job, result in zip(jobs, results):
            if not job.confirm or not result.ok:
                continue
            entries = result.signature_entries()
            if entries is None:
                continue
            component, mode = job.confirm
            batch.record(Episode(SymptomSignature.from_list(entries), component, mode))
        if len(batch):
            with self._experience_lock:
                self._experience_for(tenant).merge(batch)
            self.telemetry.incr("episodes_recorded", batch.episode_count)
            self._persist_experience(tenant, batch.to_dict())
        return len(batch)

    def experience_snapshot(self, tenant: Optional[str] = None) -> Dict:
        """A base as plain data (the server's gossip/report endpoints)."""
        with self._experience_lock:
            return self._experience_for(tenant).to_dict()

    def absorb_experience(self, data: Dict, tenant: Optional[str] = None) -> int:
        """Merge a peer replica's experience delta into the shared base.

        ``data`` is an :meth:`ExperienceBase.to_dict` payload (typically
        a gossip *delta*: only the occurrences a peer learned since the
        last round).  Returns the number of rules in the delta; merge
        semantics are the existing noisy-or :meth:`ExperienceBase.merge`.

        Absorbed deltas are deliberately *not* written through to the
        store: cluster replicas share one store file, so the replica
        that learned the episode already persisted it — re-persisting on
        every gossip delivery would double-count occurrences after a
        restart.
        """
        delta = ExperienceBase.from_dict(data)
        if len(delta):
            with self._experience_lock:
                self._experience_for(tenant).merge(delta)
            self.telemetry.incr("experience_absorbed_rules", len(delta))
        return len(delta)
