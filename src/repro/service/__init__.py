"""Fleet diagnosis service: batched parallel sessions over worker pools.

The paper's FLAMES diagnoses one unit under test at a time; a
production repair shop sees fleets.  This subsystem turns the
single-session engine into a throughput-oriented service:

* :mod:`repro.service.jobs`      — pickle-safe :class:`DiagnosisJob` /
  :class:`JobResult` with deterministic content hashing, the shared
  diagnosis JSON shape and the batch-manifest reader.
* :mod:`repro.service.cache`     — a content-addressed LRU
  :class:`ResultCache` so repeated units skip the propagation pass.
* :mod:`repro.service.pool`      — the :class:`FleetEngine`: fan-out
  over process/thread pools with per-job timeouts, bounded retries,
  graceful degradation and a shared experience merge.
* :mod:`repro.service.telemetry` — structured counters, phase timers
  and events (:class:`Telemetry`).

The ``python -m repro batch`` subcommand is the CLI front end;
:mod:`repro.server` keeps an engine resident behind an HTTP/JSON API
(``python -m repro serve``).
"""

from repro.service.cache import ResultCache
from repro.service.jobs import (
    CONFIG_FIELDS,
    DiagnosisJob,
    JobResult,
    ManifestError,
    diagnosis_to_dict,
    job_from_spec,
    load_manifest,
    measurement_from_dict,
    measurement_to_dict,
)
from repro.service.pool import BatchReport, FleetEngine, execute_job
from repro.service.telemetry import Telemetry

__all__ = [
    "CONFIG_FIELDS",
    "DiagnosisJob",
    "JobResult",
    "ManifestError",
    "diagnosis_to_dict",
    "job_from_spec",
    "load_manifest",
    "measurement_from_dict",
    "measurement_to_dict",
    "ResultCache",
    "BatchReport",
    "FleetEngine",
    "execute_job",
    "Telemetry",
]
