"""FLAMES — a Fuzzy Logic ATMS and Model-based Expert System for Analog Diagnosis.

Reproduction of F. Mohamed, M. Marzouki, M.H. Touati (ED&TC / DATE 1996).

Public API quick map:

* :mod:`repro.fuzzy`      — trapezoidal fuzzy intervals, Dc, linguistic scales,
  fuzzy entropy.
* :mod:`repro.atms`       — classic assumption-based TMS plus the fuzzy
  extension (weighted nogoods, ranked candidates).
* :mod:`repro.circuit`    — netlists, component models, fault injection and a
  DC operating-point simulator used to synthesise measurements.
* :mod:`repro.core`       — the FLAMES engine: fuzzy propagation, conflict
  recognition, diagnosis, knowledge base, learning, best-test strategy.
* :mod:`repro.service`    — fleet diagnosis service: batched parallel jobs
  over worker pools with content-addressed result caching and telemetry.
* :mod:`repro.baselines`  — DIANA-style crisp-interval diagnosis and GDE-style
  probabilistic test selection, used for comparison benchmarks.
* :mod:`repro.experiments`— drivers regenerating every paper table/figure.
"""

from repro.fuzzy import FuzzyInterval, Consistency, consistency
from repro.circuit import Circuit, DCSolver, Fault, FaultKind, apply_fault, parse_netlist, probe
from repro.core import (
    DynamicDiagnoser,
    Flames,
    FlamesConfig,
    KnowledgeBase,
    ExperienceBase,
    BestTestPlanner,
    TroubleshootingSession,
)

__version__ = "1.0.0"

__all__ = [
    "FuzzyInterval",
    "Consistency",
    "consistency",
    "Circuit",
    "DCSolver",
    "Fault",
    "FaultKind",
    "apply_fault",
    "parse_netlist",
    "probe",
    "Flames",
    "FlamesConfig",
    "DynamicDiagnoser",
    "KnowledgeBase",
    "ExperienceBase",
    "BestTestPlanner",
    "TroubleshootingSession",
    "__version__",
]
