"""Tenant resolution and request quotas at the serving boundary.

The store owns tenant *identity* (API-key digests, quota parameters);
this module owns the hot-path mechanics the server needs per request:

* :class:`TenantRegistry` — resolves ``Authorization: Bearer`` /
  ``X-Api-Key`` credentials to a :class:`~repro.store.db.TenantRecord`
  through a small TTL cache, so steady-state auth costs a dict lookup,
  not a sqlite query, while re-provisioning still takes effect within
  the TTL;
* :class:`QuotaTracker` — fixed-window request counting per tenant.
  A tenant provisioned with ``quota_limit N`` per ``quota_interval``
  seconds gets N admissions per window; the N+1-th is rejected with
  the seconds remaining in the window, which the server surfaces as
  ``429`` + ``Retry-After``.  Limit 0 means unlimited, and anonymous
  (public) traffic is never quota-limited — quotas are a property of
  *provisioned* tenants.

Both are process-local by design; the auth cache is just a
read-through memo over the shared store.  Its TTL doubles as the
advertised revocation latency: a rotated-away or revoked key keeps
working from the cache for at most ``ttl`` seconds before the next
store read rejects it.  :class:`QuotaTracker`'s fixed window is the
store-free fallback — when ``--store`` is armed the server swaps in
:class:`repro.store.quota.TokenBucketQuota`, whose bucket lives in the
store file so a whole replica fleet shares one budget per tenant.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.store.db import DiagnosisStore, TenantRecord

__all__ = ["TenantRegistry", "QuotaTracker", "QuotaDecision"]


class QuotaDecision:
    """One admission verdict: allowed, or retry after ``retry_after``."""

    __slots__ = ("allowed", "retry_after", "remaining")

    def __init__(self, allowed: bool, retry_after: float = 0.0, remaining: int = 0) -> None:
        self.allowed = allowed
        self.retry_after = retry_after
        self.remaining = remaining

    def __bool__(self) -> bool:
        return self.allowed


class QuotaTracker:
    """Fixed-window per-tenant request counting (process-local)."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        # tenant -> [window_start, count]
        self._windows: Dict[str, list] = {}
        self.rejections = 0

    def check(self, tenant: TenantRecord) -> QuotaDecision:
        """Admit or reject one request for ``tenant`` (counts it if admitted)."""
        if tenant.quota_limit <= 0:
            return QuotaDecision(True, remaining=-1)
        now = self._clock()
        with self._lock:
            window = self._windows.get(tenant.tenant_id)
            if window is None or now - window[0] >= tenant.quota_interval:
                window = [now, 0]
                self._windows[tenant.tenant_id] = window
            if window[1] >= tenant.quota_limit:
                self.rejections += 1
                remaining_s = max(0.0, tenant.quota_interval - (now - window[0]))
                return QuotaDecision(False, retry_after=remaining_s)
            window[1] += 1
            return QuotaDecision(True, remaining=tenant.quota_limit - window[1])

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "tenants_tracked": len(self._windows),
                "rejections": self.rejections,
            }


class TenantRegistry:
    """Read-through, TTL-cached API-key → tenant resolution."""

    def __init__(
        self,
        store: DiagnosisStore,
        ttl: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.store = store
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        # api_key -> (expires_at, record-or-None); unknown keys are
        # cached too so a flood of junk keys doesn't hammer sqlite.
        self._cache: Dict[str, Tuple[float, Optional[TenantRecord]]] = {}

    def resolve(self, api_key: str) -> Optional[TenantRecord]:
        if not api_key:
            return None
        now = self._clock()
        with self._lock:
            hit = self._cache.get(api_key)
            if hit is not None and hit[0] > now:
                return hit[1]
        record = self.store.resolve_api_key(api_key)
        with self._lock:
            if len(self._cache) >= 1024:  # junk-key flood bound
                self._cache.clear()
            self._cache[api_key] = (now + self.ttl, record)
        return record

    def invalidate(self) -> None:
        with self._lock:
            self._cache.clear()
