"""The persistence plane: durable cache, durable experience, tenants.

``repro.store`` gives the fleet's process-lifetime state a sqlite home
(stdlib ``sqlite3``, WAL mode) so restarts are warm and callers can be
isolated per tenant:

* :class:`DiagnosisStore` — the one-file schema: sealed cache rows,
  versioned per-tenant experience rules, API-key tenant records and
  diagnosis history (:mod:`repro.store.db`);
* :class:`PersistentResultCache` — the two-tier result cache the fleet
  engine swaps in when a store is armed (:mod:`repro.store.cache`);
* :class:`TenantRegistry` / :class:`QuotaTracker` — auth resolution
  and fixed-window quotas at the server boundary
  (:mod:`repro.store.tenants`);
* :class:`TokenBucketQuota` — store-backed token buckets so a whole
  replica fleet shares one budget per tenant (:mod:`repro.store.quota`);
* :class:`StoreMaintenance` — the supervised upkeep loop: jittered WAL
  checkpoints, bounded-batch retention, online backup and seal scrub
  (:mod:`repro.store.lifecycle`);
* :func:`build_report` — fleet-health summaries over persisted history
  (:mod:`repro.store.reports`).

Everything degrades away cleanly: without ``--store`` no module here
is imported on the hot path and behavior is byte-identical to the
in-memory planes.
"""

from repro.store.cache import NAMESPACE_SEP, PersistentResultCache, namespaced_key
from repro.store.db import PUBLIC_TENANT, DiagnosisStore, StoreError, TenantRecord
from repro.store.lifecycle import LifecycleConfig, RetentionPolicy, StoreMaintenance
from repro.store.quota import TokenBucketQuota
from repro.store.reports import build_report
from repro.store.tenants import QuotaDecision, QuotaTracker, TenantRegistry

__all__ = [
    "DiagnosisStore",
    "StoreError",
    "TenantRecord",
    "PUBLIC_TENANT",
    "PersistentResultCache",
    "NAMESPACE_SEP",
    "namespaced_key",
    "TenantRegistry",
    "QuotaTracker",
    "QuotaDecision",
    "TokenBucketQuota",
    "LifecycleConfig",
    "RetentionPolicy",
    "StoreMaintenance",
    "build_report",
]
