"""Store-backed token-bucket quotas: one budget per tenant, fleet-wide.

:class:`~repro.store.tenants.QuotaTracker` counts requests per process
— a cluster of R replicas quietly admits R×N per window.  This module
moves the budget into the store file itself: one ``quota_buckets`` row
per tenant, refilled and debited atomically inside a single ``BEGIN
IMMEDIATE`` transaction (:meth:`DiagnosisStore.quota_debit`).  Every
replica sharing the file — and every thread inside each replica —
competes for the *same* tokens, so a tenant provisioned for N requests
per interval gets N across the whole fleet, not N per process.

Bucket semantics: capacity ``quota_limit`` tokens, continuous refill at
``quota_limit / quota_interval`` tokens per second.  A rejection
reports the float seconds until the next token accrues at that rate —
which the server surfaces verbatim as ``Retry-After`` — instead of the
fixed window's "wait for the epoch to roll over".

Failure posture: a sqlite error during a debit *admits* the request
and counts the error.  Quota is a fairness mechanism, not a security
boundary; a glitching disk should degrade enforcement, never take the
data path down with it.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Callable, Dict

from repro.store.db import DiagnosisStore, TenantRecord
from repro.store.tenants import QuotaDecision

__all__ = ["TokenBucketQuota"]


class TokenBucketQuota:
    """Per-tenant token buckets persisted in the store (cluster-shared).

    Drop-in for :class:`QuotaTracker` at the server boundary: same
    ``check(tenant) -> QuotaDecision`` shape, same "limit 0 means
    unlimited" rule.  The clock is injectable but defaults to wall
    time — replicas in separate processes must agree on the refill
    timeline, and wall clocks are what they share.
    """

    def __init__(
        self, store: DiagnosisStore, clock: Callable[[], float] = time.time
    ) -> None:
        self.store = store
        self._clock = clock
        self.rejections = 0
        self.errors = 0

    def check(self, tenant: TenantRecord) -> QuotaDecision:
        """Admit or reject one request against the tenant's shared bucket."""
        if tenant.quota_limit <= 0:
            return QuotaDecision(True, remaining=-1)
        try:
            allowed, retry_after, remaining = self.store.quota_debit(
                tenant.tenant_id,
                float(tenant.quota_limit),
                float(tenant.quota_interval),
                now=self._clock(),
            )
        except sqlite3.DatabaseError:
            self.errors += 1
            return QuotaDecision(True, remaining=-1)
        if not allowed:
            self.rejections += 1
            return QuotaDecision(False, retry_after=retry_after)
        return QuotaDecision(True, remaining=int(remaining))

    def snapshot(self) -> Dict:
        try:
            buckets = self.store.quota_levels()
        except sqlite3.DatabaseError:
            buckets = {}
        return {
            "kind": "token-bucket",
            "tenants_tracked": len(buckets),
            "rejections": self.rejections,
            "errors": self.errors,
            "buckets": buckets,
        }
