"""Fleet-health reporting: persisted diagnosis history, summarized.

The proactive-maintenance literature's point is that diagnosis history
is itself diagnostic: the distribution of outcomes across a fleet —
which components keep turning up as culprits, how often runs degrade
or get interrupted, what the latency envelope looks like — tells an
operator where the fleet is drifting before any single unit screams.

:func:`build_report` folds one tenant's persisted ``history`` rows
(written by the fleet engine on every diagnosis when a store is
armed) into the JSON summary served as ``GET /v1/tenants/{id}/report``:
per-status counts, top culprits by indictment count, degraded /
interrupted / cache-hit rates, latency percentiles over *executed*
runs (cache replays answer in microseconds and would drown the signal),
and the tenant's experience-base version and rule count.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.store.db import DiagnosisStore

__all__ = ["build_report"]


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (matches the telemetry plane's rule)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[idx]


def build_report(
    store: DiagnosisStore,
    tenant: str,
    limit: int = 0,
    top_n: int = 5,
) -> Optional[Dict]:
    """The tenant's fleet-health summary, or None for an unknown tenant.

    ``limit`` restricts the fold to the most recent N history rows
    (0 = full history); ``top_n`` bounds the culprit leaderboard.
    """
    record = store.get_tenant(tenant)
    if record is None:
        return None
    rows = store.history_rows(tenant, limit=limit)

    statuses: Counter = Counter(row["status"] for row in rows)
    culprits: Counter = Counter(
        row["top_culprit"] for row in rows if row["top_culprit"]
    )
    total = len(rows)
    completed = statuses.get("ok", 0) + statuses.get("degraded", 0)
    consistent = sum(1 for row in rows if row["consistent"])
    cache_hits = sum(1 for row in rows if row["cache_hit"])
    executed_ms = [
        row["elapsed"] * 1000.0 for row in rows if not row["cache_hit"]
    ]

    def rate(n: int) -> float:
        return round(n / total, 4) if total else 0.0

    experience, experience_version = store.load_experience(tenant)

    return {
        "tenant": record.tenant_id,
        "name": record.name,
        "quota": {
            "limit": record.quota_limit,
            "interval": record.quota_interval,
        },
        "history": {
            "total": total,
            "window": limit if limit > 0 else None,
            "statuses": dict(sorted(statuses.items())),
            "consistent": consistent,
            "faulty": completed - consistent,
            "degraded_rate": rate(statuses.get("degraded", 0)),
            "interrupted_rate": rate(statuses.get("interrupted", 0)),
            "error_rate": rate(
                statuses.get("error", 0)
                + statuses.get("timeout", 0)
                + statuses.get("quarantined", 0)
            ),
            "cache_hit_rate": rate(cache_hits),
            "first_at": rows[0]["created_at"] if rows else None,
            "last_at": rows[-1]["created_at"] if rows else None,
        },
        "top_culprits": [
            {"component": component, "count": count}
            for component, count in culprits.most_common(top_n)
        ],
        "latency_ms": {
            "executed": len(executed_ms),
            "p50": round(_percentile(executed_ms, 0.50), 3),
            "p95": round(_percentile(executed_ms, 0.95), 3),
            "p99": round(_percentile(executed_ms, 0.99), 3),
        },
        "experience": {
            "version": experience_version,
            "rules": len(experience.get("rules", [])),
            "episodes": experience.get("episode_count", 0),
        },
    }
