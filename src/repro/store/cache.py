"""The durable result cache: a disk tier beneath the in-memory LRU.

:class:`PersistentResultCache` is a drop-in
:class:`~repro.service.cache.ResultCache` whose misses fall through to
the sqlite rows of a :class:`~repro.store.db.DiagnosisStore` before
being declared misses.  Every write goes through to disk in the same
call (write-through, not write-back — a SIGKILL after ``put`` returns
can cost at most sqlite's uncommitted tail, which WAL replay discards
cleanly), so a restarted process re-opens the store warm: the first
``get`` for a previously-seen content hash is a *disk* hit that
re-promotes the entry into memory.

The integrity contract is the same on both tiers — entries are sealed
``(canonical JSON blob, sha256 digest)`` pairs and the digest is
re-verified on every read.  A corrupt disk row is purged by the store,
counted in ``corruptions`` here, and surfaces as a plain miss.

Namespacing: the fleet engine keys tenant traffic as
``"<tenant>::<content_hash>"`` (see :data:`NAMESPACE_SEP`) and bare
content hashes otherwise.  The memory tier treats the composite key as
opaque — isolation falls out of key inequality — while the disk tier
splits it so sqlite rows carry a real ``namespace`` column (per-tenant
occupancy, targeted tampering in tests).  Bare keys land in the shared
``public`` namespace, preserving pre-tenant behavior byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from repro.service.cache import ResultCache, _seal
from repro.service.jobs import JobResult
from repro.store.db import PUBLIC_TENANT, DiagnosisStore

__all__ = ["PersistentResultCache", "NAMESPACE_SEP", "namespaced_key"]

#: Separator between a tenant namespace and the content hash in cache
#: keys.  Content hashes are hex sha256 and tenant ids reject ``:``, so
#: the split is unambiguous.
NAMESPACE_SEP = "::"


def namespaced_key(key: str, tenant: Optional[str] = None) -> str:
    """The cache key for ``key`` as seen by ``tenant`` (None = public)."""
    if not tenant or tenant == PUBLIC_TENANT:
        return key
    return f"{tenant}{NAMESPACE_SEP}{key}"


class PersistentResultCache(ResultCache):
    """Two-tier sealed result cache: memory LRU over sqlite rows."""

    def __init__(
        self,
        store: DiagnosisStore,
        capacity: int = 256,
        disk_capacity: int = 4096,
    ) -> None:
        super().__init__(capacity=capacity)
        if disk_capacity < 0:
            raise ValueError("disk capacity must be non-negative")
        self.store = store
        self.disk_capacity = disk_capacity
        self.disk_evictions = 0

    @staticmethod
    def _split(key: str) -> Tuple[str, str]:
        namespace, sep, bare = key.partition(NAMESPACE_SEP)
        if sep:
            return namespace, bare
        return PUBLIC_TENANT, key

    # ------------------------------------------------------------------
    def _get_disk(self, key: str) -> Optional[JobResult]:
        namespace, bare = self._split(key)
        status, blob = self.store.cache_get(namespace, bare)
        if status == "corrupt":
            with self._lock:
                self.corruptions += 1
            return None
        if status != "hit" or blob is None:
            return None
        try:
            result = JobResult.from_dict(json.loads(blob))
        except (ValueError, KeyError, TypeError):
            # Decodes-but-malformed is corruption too: the digest seal
            # matched a blob this build can't deserialize.
            with self._lock:
                self.corruptions += 1
            return None
        # Promote to the memory tier so the next lookup is a mem hit.
        blob2, digest = _seal(result)
        self._put_mem(key, result, blob2, digest)
        return result

    def put(self, key: str, result: JobResult) -> None:
        """Store in memory and write through to the sqlite tier."""
        if self.capacity == 0:
            return
        blob, digest = _seal(result)
        self._put_mem(key, result, blob, digest)
        namespace, bare = self._split(key)
        evicted = self.store.cache_put(
            namespace, bare, blob, digest, max_rows=self.disk_capacity
        )
        if evicted:
            with self._lock:
                self.disk_evictions += evicted

    def tamper_disk(self, key: str) -> bool:
        """Corrupt the *disk* row for ``key`` in place (test/chaos hook).

        Unlike :meth:`tamper` this leaves the memory tier alone; drop
        the memory entry (or restart) to make the corruption visible.
        """
        namespace, bare = self._split(key)
        return self.store.cache_tamper(namespace, bare)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        snap = super().snapshot()
        snap["disk_capacity"] = self.disk_capacity
        snap["disk_evictions"] = self.disk_evictions
        snap["disk_rows"] = self.store.cache_rows()
        return snap
