"""Supervised store maintenance: checkpoint, retention, backup, scrub.

A store that only grows, checkpoints never and is scrubbed never will
degrade slowly under sustained traffic — the WAL balloons, history
dominates the file, bit rot sits undetected until a read trips on it.
:class:`StoreMaintenance` is the proactive-upkeep loop that prevents
that, running inside batch/serve/cluster whenever ``--store`` is armed:

* **checkpointing** — a periodic ``wal_checkpoint(TRUNCATE)`` (plus
  incremental vacuum) on a *jittered* interval, so a fleet of replicas
  pointed at one file doesn't checkpoint in lockstep.  A busy
  checkpoint (a reader pinned the WAL) backs the interval off
  multiplicatively instead of spinning against the lock;
* **retention** — age- and row-count windows for ``history`` and an
  age window for cache rows, enforced in bounded delete batches
  (:meth:`DiagnosisStore.retain_history`) so a live writer never
  stalls behind a giant ``DELETE``;
* **backup / scrub** — on-demand passes over the sqlite backup API and
  the sha256 seals (:meth:`DiagnosisStore.backup` / ``scrub``), with
  the last scrub's findings kept for ``/metrics``.

One instance per store *file* is the intended topology: the server
owns it in single-process mode, the cluster gateway owns it for a
replica fleet (replicas run with the lifecycle disabled).  Every
maintenance error is counted and swallowed — upkeep must never take
the data path down.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.store.db import DiagnosisStore

__all__ = ["RetentionPolicy", "LifecycleConfig", "StoreMaintenance"]

#: Default history window: 30 days or 100k rows, whichever bites first.
#: Documented in README "Store lifecycle"; override with --retain-history.
DEFAULT_HISTORY_MAX_AGE = 30 * 86400.0
DEFAULT_HISTORY_MAX_ROWS = 100_000


@dataclass
class RetentionPolicy:
    """What to keep: 0 disables any individual window."""

    history_max_age: float = DEFAULT_HISTORY_MAX_AGE
    history_max_rows: int = DEFAULT_HISTORY_MAX_ROWS
    cache_max_age: float = 0.0
    batch: int = 500


@dataclass
class LifecycleConfig:
    """Tuning for the maintenance loop."""

    checkpoint_interval: float = 60.0
    jitter: float = 0.2          # +/- fraction of the interval
    backoff_factor: float = 2.0  # interval multiplier after a busy checkpoint
    max_backoff: float = 8.0     # cap on the accumulated multiplier
    max_batches_per_tick: int = 4
    retention: RetentionPolicy = field(default_factory=RetentionPolicy)


class StoreMaintenance:
    """The background upkeep loop over one :class:`DiagnosisStore`.

    ``start()`` runs ticks on a daemon thread; ``maybe_tick()`` is the
    threadless alternative for batch mode (call it between batches — it
    ticks only once the interval has elapsed, amortising upkeep into
    the workload).  Both paths share ``tick()``, which is also what
    tests drive directly.
    """

    def __init__(
        self,
        store: DiagnosisStore,
        config: Optional[LifecycleConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        seed: Optional[int] = None,
    ) -> None:
        self.store = store
        self.config = config or LifecycleConfig()
        self._clock = clock
        self._rng = random.Random(seed)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._backoff = 1.0
        self._last_tick: Optional[float] = None
        self._counters: Dict[str, int] = {
            "ticks": 0,
            "checkpoints": 0,
            "checkpoint_busy": 0,
            "history_deleted": 0,
            "cache_deleted": 0,
            "errors": 0,
        }
        self._last_checkpoint: Dict[str, int] = {"busy": 0, "log": 0, "done": 0}
        self._last_scrub: Optional[Dict] = None
        self._backups = 0

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the daemon loop (no-op when the interval is disabled)."""
        if self.config.checkpoint_interval <= 0 or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="store-maintenance", daemon=True
        )
        self._thread.start()

    def stop(self, final_tick: bool = True) -> None:
        """Stop the loop; by default runs one last tick so the WAL is
        checkpointed before the process exits."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        if final_tick:
            self.tick()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _interval(self) -> float:
        base = self.config.checkpoint_interval * self._backoff
        spread = self.config.jitter
        return base * (1.0 + self._rng.uniform(-spread, spread))

    def _run(self) -> None:
        while not self._stop.wait(self._interval()):
            self.tick()

    # ------------------------------------------------------------------
    # One pass of upkeep
    # ------------------------------------------------------------------
    def tick(self, now: Optional[float] = None) -> Dict:
        """Checkpoint + retention, once.  Never raises; errors are counted."""
        with self._lock:
            self._counters["ticks"] += 1
            self._last_tick = self._clock()
            result: Dict = {}
            try:
                busy, log, done = self.store.checkpoint()
                self._counters["checkpoints"] += 1
                self._last_checkpoint = {"busy": busy, "log": log, "done": done}
                if busy:
                    self._counters["checkpoint_busy"] += 1
                    self._backoff = min(
                        self._backoff * self.config.backoff_factor,
                        self.config.max_backoff,
                    )
                else:
                    self._backoff = 1.0
                result["checkpoint"] = self._last_checkpoint
            except sqlite3.DatabaseError:
                self._counters["errors"] += 1
            result["history_deleted"] = self._retain(now)
            result["cache_deleted"] = self._retain_cache(now)
            return result

    def _retain(self, now: Optional[float]) -> int:
        policy = self.config.retention
        if policy.history_max_age <= 0 and policy.history_max_rows <= 0:
            return 0
        deleted = 0
        try:
            for _ in range(max(1, self.config.max_batches_per_tick)):
                got = self.store.retain_history(
                    max_age=policy.history_max_age,
                    max_rows=policy.history_max_rows,
                    batch=policy.batch,
                    now=now,
                )
                deleted += got
                if got < policy.batch:
                    break
        except sqlite3.DatabaseError:
            self._counters["errors"] += 1
        self._counters["history_deleted"] += deleted
        return deleted

    def _retain_cache(self, now: Optional[float]) -> int:
        policy = self.config.retention
        if policy.cache_max_age <= 0:
            return 0
        deleted = 0
        try:
            for _ in range(max(1, self.config.max_batches_per_tick)):
                got = self.store.retain_cache(
                    policy.cache_max_age, batch=policy.batch, now=now
                )
                deleted += got
                if got < policy.batch:
                    break
        except sqlite3.DatabaseError:
            self._counters["errors"] += 1
        self._counters["cache_deleted"] += deleted
        return deleted

    def maybe_tick(self, now: Optional[float] = None) -> Optional[Dict]:
        """Inline, interval-gated tick for threadless (batch) callers."""
        if self.config.checkpoint_interval <= 0:
            return None
        if self._last_tick is not None:
            elapsed = self._clock() - self._last_tick
            if elapsed < self.config.checkpoint_interval * self._backoff:
                return None
        return self.tick(now)

    # ------------------------------------------------------------------
    # On-demand passes
    # ------------------------------------------------------------------
    def run_backup(self, dest: Union[str, Path]) -> Dict:
        result = self.store.backup(dest)
        with self._lock:
            self._backups += 1
        return result

    def run_scrub(self) -> Dict:
        result = self.store.scrub()
        with self._lock:
            self._last_scrub = result
        return result

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """The lifecycle section of ``/metrics`` and ``/readyz``."""
        with self._lock:
            last = dict(self._last_checkpoint)
            counters = dict(self._counters)
            scrub = dict(self._last_scrub) if self._last_scrub else None
            backups = self._backups
            backoff = self._backoff
        return {
            "running": self.running,
            "backoff": backoff,
            "checkpoint_lag_frames": max(0, last["log"] - last["done"]),
            "wal_bytes": self.store.wal_size(),
            "last_checkpoint": last,
            "last_scrub": scrub,
            "backups": backups,
            **counters,
        }
