"""The persistence plane: one sqlite3 file under everything learned.

Everything the fleet accumulates — warm cache entries, the experience
base's symptom→failure rules, tenant identities and the diagnosis
history — used to die with the process.  :class:`DiagnosisStore` makes
that state a durable, versioned artifact on disk (stdlib ``sqlite3``
only), shared by every layer that owns state:

* **result cache rows** — the disk tier beneath
  :class:`~repro.store.cache.PersistentResultCache`: sealed
  ``(blob, sha256 digest)`` pairs keyed ``(namespace, content_hash)``,
  LRU-ordered by an access sequence and evicted by row count.  A row
  whose digest no longer matches its blob is *purged and reported* —
  bit rot degrades the hit rate, it never serves a poisoned result;
* **experience rules** — a versioned, per-tenant
  :class:`~repro.core.learning.ExperienceBase` projection.  Deltas
  merge with the exact noisy-or semantics of
  :meth:`ExperienceBase.merge` (``1 - (1-c1)(1-c2)``, occurrence
  counts summed) inside one write transaction, and every merge bumps
  the tenant's experience version — replicas can tell "restored state"
  from "new evidence";
* **tenants** — API-key identities (sha256 digests only; the plain
  key is printed once at provisioning and never stored) with
  per-tenant request quotas;
* **history** — one row per diagnosis outcome, the raw material the
  fleet-health report (:mod:`repro.store.reports`) folds into
  per-status counts, top culprits and latency percentiles.

Concurrency: the store opens in WAL mode so a crashed writer replays
cleanly on the next open (kill -9 mid-write loses at most the
uncommitted transaction) and replica *processes* sharing one file
coexist — WAL allows concurrent readers alongside a single writer,
with ``busy_timeout`` absorbing write collisions.  In-process, one
connection is shared behind an :class:`threading.RLock`; every public
method is safe to call from the server's executor threads.
"""

from __future__ import annotations

import hashlib
import json
import secrets
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.learning import rule_identity

__all__ = ["DiagnosisStore", "StoreError", "TenantRecord", "PUBLIC_TENANT"]

#: The namespace unauthenticated traffic lands in.  Serving without a
#: store (or without an API key) behaves exactly as before; the public
#: tenant just gives that traffic a durable home too.
PUBLIC_TENANT = "public"

_SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cache_entries (
    namespace  TEXT NOT NULL,
    key        TEXT NOT NULL,
    blob       TEXT NOT NULL,
    digest     TEXT NOT NULL,
    seq        INTEGER NOT NULL,
    created_at REAL NOT NULL DEFAULT 0,
    PRIMARY KEY (namespace, key)
);
CREATE INDEX IF NOT EXISTS cache_entries_seq ON cache_entries (seq);
CREATE TABLE IF NOT EXISTS experience_meta (
    tenant         TEXT PRIMARY KEY,
    version        INTEGER NOT NULL,
    episode_count  INTEGER NOT NULL,
    base_certainty REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS experience_rules (
    tenant      TEXT NOT NULL,
    rule_key    TEXT NOT NULL,
    signature   TEXT NOT NULL,
    component   TEXT NOT NULL,
    mode        TEXT NOT NULL,
    certainty   REAL NOT NULL,
    occurrences INTEGER NOT NULL,
    version     INTEGER NOT NULL,
    PRIMARY KEY (tenant, rule_key)
);
CREATE TABLE IF NOT EXISTS tenants (
    tenant_id      TEXT PRIMARY KEY,
    name           TEXT NOT NULL,
    key_digest     TEXT NOT NULL UNIQUE,
    quota_limit    INTEGER NOT NULL,
    quota_interval REAL NOT NULL,
    created_at     REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS history (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    tenant       TEXT NOT NULL,
    unit         TEXT NOT NULL,
    content_hash TEXT NOT NULL,
    status       TEXT NOT NULL,
    consistent   INTEGER NOT NULL,
    top_culprit  TEXT NOT NULL,
    elapsed      REAL NOT NULL,
    cache_hit    INTEGER NOT NULL,
    created_at   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS history_tenant ON history (tenant);
CREATE INDEX IF NOT EXISTS history_created ON history (created_at);
CREATE TABLE IF NOT EXISTS tenant_keys (
    digest     TEXT PRIMARY KEY,
    tenant_id  TEXT NOT NULL,
    created_at REAL NOT NULL,
    not_after  REAL NOT NULL DEFAULT 0,
    revoked    INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS tenant_keys_tenant ON tenant_keys (tenant_id);
CREATE TABLE IF NOT EXISTS quota_buckets (
    tenant     TEXT PRIMARY KEY,
    tokens     REAL NOT NULL,
    updated_at REAL NOT NULL
);
"""


class StoreError(RuntimeError):
    """The store file is unusable (bad schema, undecodable rows, ...)."""


class TenantRecord:
    """One provisioned tenant, as read back from the store (no key)."""

    def __init__(
        self,
        tenant_id: str,
        name: str,
        quota_limit: int,
        quota_interval: float,
        created_at: float,
    ) -> None:
        self.tenant_id = tenant_id
        self.name = name
        self.quota_limit = int(quota_limit)
        self.quota_interval = float(quota_interval)
        self.created_at = float(created_at)

    def to_dict(self) -> Dict:
        return {
            "tenant_id": self.tenant_id,
            "name": self.name,
            "quota_limit": self.quota_limit,
            "quota_interval": self.quota_interval,
            "created_at": self.created_at,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TenantRecord({self.tenant_id!r}, quota={self.quota_limit}/{self.quota_interval:g}s)"


def _hash_key(api_key: str) -> str:
    return hashlib.sha256(api_key.encode()).hexdigest()


class DiagnosisStore:
    """The sqlite-backed persistence plane shared by cache/experience/tenants."""

    def __init__(self, path: Union[str, Path], busy_timeout: float = 5.0) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, timeout=busy_timeout
        )
        self._conn.isolation_level = None  # explicit transactions only
        with self._lock:
            cur = self._conn.cursor()
            # Must precede table creation to take effect; files created
            # before this setting simply no-op on incremental_vacuum.
            cur.execute("PRAGMA auto_vacuum=INCREMENTAL")
            cur.execute("PRAGMA journal_mode=WAL")
            cur.execute("PRAGMA synchronous=NORMAL")
            cur.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
            # executescript manages its own transaction (and commits any
            # pending one), so the schema is not wrapped in BEGIN here.
            cur.executescript(_SCHEMA)
            cur.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(_SCHEMA_VERSION),),
            )
            self._migrate(cur)

    def _migrate(self, cur: sqlite3.Cursor) -> None:
        """Upgrade an existing store file in place (v1 → v2).

        v2 moves key material into ``tenant_keys`` (several digests may
        be active per tenant, each with its own expiry/revocation) and
        adds ``quota_buckets`` plus a ``created_at`` column on cache
        rows so age-based retention has something to bite on.
        """
        row = cur.execute("SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
        version = int(row[0]) if row else _SCHEMA_VERSION
        if version > _SCHEMA_VERSION:
            raise StoreError(
                f"store {self.path!r} has schema v{version}; this build reads up to "
                f"v{_SCHEMA_VERSION}"
            )
        if version == _SCHEMA_VERSION:
            return
        columns = {r[1] for r in cur.execute("PRAGMA table_info(cache_entries)")}
        cur.execute("BEGIN IMMEDIATE")
        try:
            if "created_at" not in columns:
                cur.execute(
                    "ALTER TABLE cache_entries ADD COLUMN created_at REAL NOT NULL DEFAULT 0"
                )
            # Pre-migration rows carry no timestamp; stamping them "now"
            # starts their retention clock at the upgrade, which is the
            # conservative choice (never mass-expire a warm cache).
            now = time.time()
            cur.execute(
                "UPDATE cache_entries SET created_at = ? WHERE created_at = 0", (now,)
            )
            cur.execute(
                "INSERT OR IGNORE INTO tenant_keys "
                "(digest, tenant_id, created_at, not_after, revoked) "
                "SELECT key_digest, tenant_id, created_at, 0, 0 FROM tenants"
            )
            cur.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(_SCHEMA_VERSION),),
            )
            cur.execute("COMMIT")
        except sqlite3.DatabaseError:
            cur.execute("ROLLBACK")
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "DiagnosisStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _next_seq(self, cur: sqlite3.Cursor) -> int:
        row = cur.execute("SELECT COALESCE(MAX(seq), 0) FROM cache_entries").fetchone()
        return int(row[0]) + 1

    # ------------------------------------------------------------------
    # Cache rows (the disk tier)
    # ------------------------------------------------------------------
    def cache_get(self, namespace: str, key: str) -> Tuple[str, Optional[str]]:
        """Look one sealed row up: ``(status, blob)``.

        ``status`` is ``"hit"`` (the blob's digest verified), ``"miss"``
        (no such row) or ``"corrupt"`` (the stored digest no longer
        matches — the row has been purged; the caller counts it).  A hit
        refreshes the row's LRU sequence.
        """
        with self._lock:
            cur = self._conn.cursor()
            try:
                row = cur.execute(
                    "SELECT blob, digest FROM cache_entries WHERE namespace = ? AND key = ?",
                    (namespace, key),
                ).fetchone()
            except sqlite3.DatabaseError:
                return "corrupt", None
            if row is None:
                return "miss", None
            blob, digest = row
            if hashlib.sha256(blob.encode()).hexdigest() != digest:
                cur.execute("BEGIN IMMEDIATE")
                cur.execute(
                    "DELETE FROM cache_entries WHERE namespace = ? AND key = ?",
                    (namespace, key),
                )
                cur.execute("COMMIT")
                return "corrupt", None
            cur.execute("BEGIN IMMEDIATE")
            cur.execute(
                "UPDATE cache_entries SET seq = ? WHERE namespace = ? AND key = ?",
                (self._next_seq(cur), namespace, key),
            )
            cur.execute("COMMIT")
            return "hit", blob

    def cache_put(
        self, namespace: str, key: str, blob: str, digest: str, max_rows: int = 0
    ) -> int:
        """Write one sealed row through; returns rows evicted for space.

        ``max_rows`` bounds the *whole table* (all namespaces — the disk
        budget is per store file, not per tenant); 0 means unbounded.
        Eviction is LRU by the access sequence ``cache_get`` refreshes.
        """
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                cur.execute(
                    "INSERT OR REPLACE INTO cache_entries "
                    "(namespace, key, blob, digest, seq, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (namespace, key, blob, digest, self._next_seq(cur), time.time()),
                )
                evicted = 0
                if max_rows > 0:
                    count = int(
                        cur.execute("SELECT COUNT(*) FROM cache_entries").fetchone()[0]
                    )
                    overflow = count - max_rows
                    if overflow > 0:
                        cur.execute(
                            "DELETE FROM cache_entries WHERE rowid IN ("
                            "SELECT rowid FROM cache_entries ORDER BY seq ASC LIMIT ?)",
                            (overflow,),
                        )
                        evicted = overflow
                cur.execute("COMMIT")
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise
            return evicted

    def cache_rows(self, namespace: Optional[str] = None) -> int:
        with self._lock:
            if namespace is None:
                row = self._conn.execute("SELECT COUNT(*) FROM cache_entries").fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM cache_entries WHERE namespace = ?", (namespace,)
                ).fetchone()
            return int(row[0])

    def cache_tamper(self, namespace: str, key: str) -> bool:
        """Corrupt a stored blob in place (test/chaos hook).

        The next ``cache_get`` for the key sees the broken seal, purges
        the row and reports ``"corrupt"``.  True when the row existed.
        """
        with self._lock:
            cur = self._conn.cursor()
            row = cur.execute(
                "SELECT blob FROM cache_entries WHERE namespace = ? AND key = ?",
                (namespace, key),
            ).fetchone()
            if row is None:
                return False
            blob = row[0]
            tampered = blob[:-1] + ("x" if blob[-1:] != "x" else "y")
            cur.execute("BEGIN IMMEDIATE")
            cur.execute(
                "UPDATE cache_entries SET blob = ? WHERE namespace = ? AND key = ?",
                (tampered, namespace, key),
            )
            cur.execute("COMMIT")
            return True

    # ------------------------------------------------------------------
    # Experience (versioned, per tenant)
    # ------------------------------------------------------------------
    def experience_version(self, tenant: str) -> int:
        """The tenant's experience version (0 = nothing persisted yet)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT version FROM experience_meta WHERE tenant = ?", (tenant,)
            ).fetchone()
            return int(row[0]) if row else 0

    def load_experience(self, tenant: str) -> Tuple[Dict, int]:
        """The tenant's persisted base as an ``ExperienceBase.to_dict``
        payload, plus its version.  An unseen tenant loads empty at
        version 0."""
        with self._lock:
            meta = self._conn.execute(
                "SELECT version, episode_count, base_certainty "
                "FROM experience_meta WHERE tenant = ?",
                (tenant,),
            ).fetchone()
            if meta is None:
                return {"base_certainty": 0.6, "episode_count": 0, "rules": []}, 0
            version, episodes, base_certainty = meta
            rules = []
            for signature, component, mode, certainty, occurrences in self._conn.execute(
                "SELECT signature, component, mode, certainty, occurrences "
                "FROM experience_rules WHERE tenant = ? ORDER BY rule_key",
                (tenant,),
            ):
                try:
                    entries = json.loads(signature)
                except json.JSONDecodeError as exc:
                    raise StoreError(
                        f"undecodable experience signature for {tenant!r}: {exc}"
                    ) from None
                rules.append(
                    {
                        "signature": entries,
                        "component": component,
                        "mode": mode,
                        "certainty": float(certainty),
                        "occurrences": int(occurrences),
                    }
                )
            return {
                "base_certainty": float(base_certainty),
                "episode_count": int(episodes),
                "rules": rules,
            }, int(version)

    def merge_experience(self, tenant: str, delta: Dict) -> int:
        """Fold an experience delta in with noisy-or semantics; returns
        the tenant's new version.

        ``delta`` is an :meth:`ExperienceBase.to_dict` payload (often a
        single batch's worth of confirmations).  Matching rules combine
        certainty ``1 - (1-c1)(1-c2)`` and sum occurrences — byte-for-
        byte the semantics of :meth:`ExperienceBase.merge` — inside one
        transaction, so a crash mid-merge leaves the previous version
        intact.  An empty delta is a no-op (the version does not bump).
        """
        rules = delta.get("rules") or []
        episodes = int(delta.get("episode_count", 0))
        if not rules and not episodes:
            return self.experience_version(tenant)
        base_certainty = float(delta.get("base_certainty", 0.6))
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                meta = cur.execute(
                    "SELECT version, episode_count FROM experience_meta WHERE tenant = ?",
                    (tenant,),
                ).fetchone()
                version = (int(meta[0]) if meta else 0) + 1
                episode_count = (int(meta[1]) if meta else 0) + episodes
                for entry in rules:
                    signature = entry.get("signature") or []
                    component = str(entry.get("component", ""))
                    mode = str(entry.get("mode", ""))
                    certainty = float(entry.get("certainty", base_certainty))
                    occurrences = int(entry.get("occurrences", 1))
                    key = rule_identity(signature, component, mode)
                    row = cur.execute(
                        "SELECT certainty, occurrences FROM experience_rules "
                        "WHERE tenant = ? AND rule_key = ?",
                        (tenant, key),
                    ).fetchone()
                    if row is not None:
                        merged_certainty = 1.0 - (1.0 - float(row[0])) * (1.0 - certainty)
                        cur.execute(
                            "UPDATE experience_rules SET certainty = ?, occurrences = ?, "
                            "version = ? WHERE tenant = ? AND rule_key = ?",
                            (merged_certainty, int(row[1]) + occurrences, version, tenant, key),
                        )
                    else:
                        cur.execute(
                            "INSERT INTO experience_rules (tenant, rule_key, signature, "
                            "component, mode, certainty, occurrences, version) "
                            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                            (
                                tenant,
                                key,
                                json.dumps(
                                    [[str(p), str(b), int(d)] for p, b, d in signature],
                                    separators=(",", ":"),
                                ),
                                component,
                                mode,
                                certainty,
                                occurrences,
                                version,
                            ),
                        )
                cur.execute(
                    "INSERT INTO experience_meta (tenant, version, episode_count, "
                    "base_certainty) VALUES (?, ?, ?, ?) "
                    "ON CONFLICT(tenant) DO UPDATE SET version = ?, episode_count = ?",
                    (tenant, version, episode_count, base_certainty, version, episode_count),
                )
                cur.execute("COMMIT")
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise
            return version

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def provision_tenant(
        self,
        tenant_id: str,
        name: str = "",
        quota_limit: int = 0,
        quota_interval: float = 60.0,
        api_key: Optional[str] = None,
    ) -> str:
        """Create a tenant and return its API key (shown exactly once).

        Only the key's sha256 digest is stored; losing the key means
        re-provisioning.  ``quota_limit`` 0 means unlimited.
        """
        if not tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if ":" in tenant_id or "/" in tenant_id or any(c.isspace() for c in tenant_id):
            # ':' would collide with cache-key namespacing, '/' with the
            # report URL path; whitespace just invites header mangling.
            raise ValueError("tenant_id must not contain ':', '/' or whitespace")
        if quota_limit < 0:
            raise ValueError("quota_limit must be non-negative")
        if quota_interval <= 0:
            raise ValueError("quota_interval must be positive")
        key = api_key if api_key is not None else f"rk_{secrets.token_hex(16)}"
        now = time.time()
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                cur.execute(
                    "INSERT INTO tenants (tenant_id, name, key_digest, quota_limit, "
                    "quota_interval, created_at) VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        tenant_id,
                        name or tenant_id,
                        _hash_key(key),
                        int(quota_limit),
                        float(quota_interval),
                        now,
                    ),
                )
                cur.execute(
                    "INSERT INTO tenant_keys (digest, tenant_id, created_at) "
                    "VALUES (?, ?, ?)",
                    (_hash_key(key), tenant_id, now),
                )
                cur.execute("COMMIT")
            except sqlite3.IntegrityError:
                cur.execute("ROLLBACK")
                raise ValueError(f"tenant {tenant_id!r} already exists") from None
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise
        return key

    def resolve_api_key(
        self, api_key: str, now: Optional[float] = None
    ) -> Optional[TenantRecord]:
        """The tenant owning ``api_key``, or None (never raises on junk).

        Keys live in ``tenant_keys`` — several digests may be active for
        one tenant during a rotation overlap.  A digest that has been
        revoked, or whose ``not_after`` has passed, resolves to None
        exactly as an unknown key does.
        """
        if not api_key:
            return None
        if now is None:
            now = time.time()
        with self._lock:
            row = self._conn.execute(
                "SELECT t.tenant_id, t.name, t.quota_limit, t.quota_interval, "
                "t.created_at, k.not_after, k.revoked "
                "FROM tenant_keys k JOIN tenants t ON t.tenant_id = k.tenant_id "
                "WHERE k.digest = ?",
                (_hash_key(api_key),),
            ).fetchone()
        if row is None:
            return None
        not_after, revoked = float(row[5]), int(row[6])
        if revoked or (not_after > 0 and now >= not_after):
            return None
        return TenantRecord(*row[:5])

    def rotate_key(
        self,
        tenant_id: str,
        overlap: float = 0.0,
        api_key: Optional[str] = None,
        now: Optional[float] = None,
    ) -> str:
        """Mint a fresh API key for ``tenant_id`` and expire the old ones.

        Existing active digests get ``not_after = now + overlap`` (0 by
        default — the old key dies immediately; a positive overlap gives
        callers a grace window to swap credentials).  The new key is
        returned exactly once; only its digest is stored.  One
        transaction, so a crash mid-rotation never leaves the tenant
        keyless.
        """
        if overlap < 0:
            raise ValueError("overlap must be non-negative")
        if now is None:
            now = time.time()
        key = api_key if api_key is not None else f"rk_{secrets.token_hex(16)}"
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                exists = cur.execute(
                    "SELECT 1 FROM tenants WHERE tenant_id = ?", (tenant_id,)
                ).fetchone()
                if exists is None:
                    cur.execute("ROLLBACK")
                    raise ValueError(f"no such tenant {tenant_id!r}")
                cur.execute(
                    "UPDATE tenant_keys SET not_after = ? WHERE tenant_id = ? "
                    "AND revoked = 0 AND (not_after = 0 OR not_after > ?)",
                    (now + overlap, tenant_id, now + overlap),
                )
                cur.execute(
                    "INSERT INTO tenant_keys (digest, tenant_id, created_at) "
                    "VALUES (?, ?, ?)",
                    (_hash_key(key), tenant_id, now),
                )
                cur.execute(
                    "UPDATE tenants SET key_digest = ? WHERE tenant_id = ?",
                    (_hash_key(key), tenant_id),
                )
                cur.execute("COMMIT")
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise
        return key

    def revoke_keys(self, tenant_id: str) -> int:
        """Revoke every key the tenant holds; returns how many died.

        Revocation is terminal (rotation un-wedges a revoked tenant by
        minting a fresh key).  Callers already holding a cached
        :class:`TenantRecord` keep working until their registry TTL
        lapses — that TTL is the advertised revocation latency.
        """
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                cur.execute(
                    "UPDATE tenant_keys SET revoked = 1 "
                    "WHERE tenant_id = ? AND revoked = 0",
                    (tenant_id,),
                )
                revoked = cur.rowcount
                cur.execute("COMMIT")
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise
        return int(revoked)

    def list_keys(self, tenant_id: str) -> List[Dict]:
        """Key metadata for one tenant (digest prefixes only, no keys)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT digest, created_at, not_after, revoked FROM tenant_keys "
                "WHERE tenant_id = ? ORDER BY created_at",
                (tenant_id,),
            ).fetchall()
        return [
            {
                "digest_prefix": digest[:12],
                "created_at": float(created_at),
                "not_after": float(not_after),
                "revoked": bool(revoked),
            }
            for digest, created_at, not_after, revoked in rows
        ]

    def get_tenant(self, tenant_id: str) -> Optional[TenantRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT tenant_id, name, quota_limit, quota_interval, created_at "
                "FROM tenants WHERE tenant_id = ?",
                (tenant_id,),
            ).fetchone()
        return TenantRecord(*row) if row else None

    def list_tenants(self) -> List[TenantRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT tenant_id, name, quota_limit, quota_interval, created_at "
                "FROM tenants ORDER BY tenant_id"
            ).fetchall()
        return [TenantRecord(*row) for row in rows]

    # ------------------------------------------------------------------
    # History (the fleet-health report's raw material)
    # ------------------------------------------------------------------
    def record_history(
        self,
        tenant: str,
        unit: str,
        content_hash: str,
        status: str,
        consistent: bool,
        top_culprit: str,
        elapsed: float,
        cache_hit: bool,
    ) -> None:
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                cur.execute(
                    "INSERT INTO history (tenant, unit, content_hash, status, consistent, "
                    "top_culprit, elapsed, cache_hit, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        tenant,
                        unit,
                        content_hash,
                        status,
                        1 if consistent else 0,
                        top_culprit,
                        float(elapsed),
                        1 if cache_hit else 0,
                        time.time(),
                    ),
                )
                cur.execute("COMMIT")
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise

    def history_rows(self, tenant: str, limit: int = 0) -> List[Dict]:
        """The tenant's diagnosis history, oldest first."""
        sql = (
            "SELECT unit, content_hash, status, consistent, top_culprit, elapsed, "
            "cache_hit, created_at FROM history WHERE tenant = ? ORDER BY id"
        )
        args: Tuple = (tenant,)
        if limit > 0:
            sql += " DESC LIMIT ?"
            args = (tenant, limit)
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        if limit > 0:
            rows = list(reversed(rows))
        return [
            {
                "unit": unit,
                "content_hash": content_hash,
                "status": status,
                "consistent": bool(consistent),
                "top_culprit": top_culprit,
                "elapsed": float(elapsed),
                "cache_hit": bool(cache_hit),
                "created_at": float(created_at),
            }
            for (unit, content_hash, status, consistent,
                 top_culprit, elapsed, cache_hit, created_at) in rows
        ]

    def history_count(self, tenant: str) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM history WHERE tenant = ?", (tenant,)
            ).fetchone()
            return int(row[0])

    # ------------------------------------------------------------------
    # Quota buckets (one shared token bucket per tenant, all replicas)
    # ------------------------------------------------------------------
    def quota_debit(
        self,
        tenant_id: str,
        capacity: float,
        interval: float,
        cost: float = 1.0,
        now: Optional[float] = None,
    ) -> Tuple[bool, float, float]:
        """Atomically refill and debit one tenant's token bucket.

        The bucket holds at most ``capacity`` tokens and refills at
        ``capacity / interval`` tokens per second.  Refill and debit
        happen in a single ``BEGIN IMMEDIATE`` transaction, so every
        replica sharing the store file sees one budget and a crash
        between refill and debit never double-charges (the transaction
        either committed or it didn't).

        Returns ``(allowed, retry_after, remaining)`` — ``retry_after``
        is the float seconds until one token accrues at the refill rate
        (0.0 when admitted).
        """
        if capacity <= 0 or interval <= 0:
            return True, 0.0, -1.0
        if now is None:
            now = time.time()
        rate = float(capacity) / float(interval)
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                row = cur.execute(
                    "SELECT tokens, updated_at FROM quota_buckets WHERE tenant = ?",
                    (tenant_id,),
                ).fetchone()
                if row is None:
                    tokens = float(capacity)
                else:
                    elapsed = max(0.0, now - float(row[1]))
                    tokens = min(float(capacity), float(row[0]) + elapsed * rate)
                if tokens >= cost:
                    tokens -= cost
                    allowed, retry_after = True, 0.0
                else:
                    allowed, retry_after = False, (cost - tokens) / rate
                cur.execute(
                    "INSERT OR REPLACE INTO quota_buckets (tenant, tokens, updated_at) "
                    "VALUES (?, ?, ?)",
                    (tenant_id, tokens, now),
                )
                cur.execute("COMMIT")
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise
        return allowed, retry_after, tokens

    def quota_levels(self) -> Dict[str, float]:
        """Current token level per tenant bucket (metrics fodder)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT tenant, tokens FROM quota_buckets ORDER BY tenant"
            ).fetchall()
        return {tenant: round(float(tokens), 3) for tenant, tokens in rows}

    # ------------------------------------------------------------------
    # Maintenance primitives (driven by repro.store.lifecycle)
    # ------------------------------------------------------------------
    def checkpoint(self, truncate: bool = True) -> Tuple[int, int, int]:
        """Run a WAL checkpoint (+ incremental vacuum); ``(busy, log, done)``.

        ``busy`` is 1 when a concurrent reader pinned the WAL and the
        checkpoint could not finish — callers back off and retry rather
        than blocking the writer.  ``log``/``done`` are total and
        checkpointed WAL frames.
        """
        mode = "TRUNCATE" if truncate else "PASSIVE"
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("PRAGMA incremental_vacuum")
            row = cur.execute(f"PRAGMA wal_checkpoint({mode})").fetchone()
        busy, log, done = (int(v) if v is not None else 0 for v in row)
        return busy, log, done

    def wal_size(self) -> int:
        """Bytes currently sitting in the WAL file (0 when fully checkpointed)."""
        try:
            return Path(self.path + "-wal").stat().st_size
        except OSError:
            return 0

    def retain_history(
        self,
        max_age: float = 0.0,
        max_rows: int = 0,
        batch: int = 500,
        now: Optional[float] = None,
    ) -> int:
        """Delete expired/overflow history rows, at most ``batch`` per call.

        Age and row-count windows compose (0 disables either).  The
        bounded batch keeps each delete transaction short so a live
        writer never stalls behind retention; the lifecycle loop calls
        this repeatedly until it returns less than a full batch.
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        if now is None:
            now = time.time()
        deleted = 0
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                if max_age > 0:
                    cur.execute(
                        "DELETE FROM history WHERE id IN ("
                        "SELECT id FROM history WHERE created_at < ? ORDER BY id LIMIT ?)",
                        (now - max_age, batch),
                    )
                    deleted += cur.rowcount
                if max_rows > 0 and deleted < batch:
                    total = int(cur.execute("SELECT COUNT(*) FROM history").fetchone()[0])
                    overflow = min(total - max_rows, batch - deleted)
                    if overflow > 0:
                        cur.execute(
                            "DELETE FROM history WHERE id IN ("
                            "SELECT id FROM history ORDER BY id LIMIT ?)",
                            (overflow,),
                        )
                        deleted += cur.rowcount
                cur.execute("COMMIT")
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise
        return deleted

    def retain_cache(
        self, max_age: float, batch: int = 500, now: Optional[float] = None
    ) -> int:
        """Delete cache rows older than ``max_age`` seconds (bounded batch).

        Row-count pressure is already handled inline by ``cache_put``;
        this is the age window for stores whose working set goes cold.
        """
        if max_age <= 0:
            return 0
        if batch <= 0:
            raise ValueError("batch must be positive")
        if now is None:
            now = time.time()
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                cur.execute(
                    "DELETE FROM cache_entries WHERE rowid IN ("
                    "SELECT rowid FROM cache_entries WHERE created_at < ? "
                    "ORDER BY seq LIMIT ?)",
                    (now - max_age, batch),
                )
                deleted = cur.rowcount
                cur.execute("COMMIT")
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise
        return int(deleted)

    def backup(self, dest: Union[str, Path], pages: int = 256) -> Dict:
        """Copy the live store to ``dest`` via the sqlite3 backup API.

        The backup proceeds in ``pages``-sized steps so concurrent
        writers keep making progress (sqlite restarts the copy if the
        source changes under it); the result is a consistent snapshot —
        a store file that opens clean and serves byte-identical cache
        hits.  Refuses to overwrite the live file itself.
        """
        dest = str(dest)
        if Path(dest).resolve() == Path(self.path).resolve():
            raise ValueError("backup destination must differ from the live store")
        with self._lock:
            out = sqlite3.connect(dest)
            try:
                self._conn.backup(out, pages=pages)
                out.commit()
            finally:
                out.close()
        size = Path(dest).stat().st_size
        return {"dest": dest, "bytes": int(size)}

    def integrity_check(self) -> str:
        """sqlite's own verdict on the file: ``"ok"`` or the first error."""
        with self._lock:
            row = self._conn.execute("PRAGMA integrity_check(1)").fetchone()
        return str(row[0]) if row else "ok"

    def scrub(self) -> Dict:
        """Re-verify every cache seal plus the sqlite structure itself.

        Walks all cache rows, recomputes each blob's sha256 against the
        stored digest, purges mismatches (bit rot never serves a
        poisoned result) and returns
        ``{"checked", "purged", "integrity"}``.  Purging happens in one
        transaction after the scan so the read pass holds no write lock.
        """
        bad: List[Tuple[str, str]] = []
        checked = 0
        with self._lock:
            for namespace, key, blob, digest in self._conn.execute(
                "SELECT namespace, key, blob, digest FROM cache_entries"
            ):
                checked += 1
                if hashlib.sha256(blob.encode()).hexdigest() != digest:
                    bad.append((namespace, key))
            if bad:
                cur = self._conn.cursor()
                cur.execute("BEGIN IMMEDIATE")
                try:
                    for namespace, key in bad:
                        cur.execute(
                            "DELETE FROM cache_entries WHERE namespace = ? AND key = ?",
                            (namespace, key),
                        )
                    cur.execute("COMMIT")
                except sqlite3.DatabaseError:
                    cur.execute("ROLLBACK")
                    raise
        return {
            "checked": checked,
            "purged": len(bad),
            "integrity": self.integrity_check(),
        }

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Occupancy overview (the server folds this into ``/metrics``)."""
        with self._lock:
            cache_rows = int(
                self._conn.execute("SELECT COUNT(*) FROM cache_entries").fetchone()[0]
            )
            rule_rows = int(
                self._conn.execute("SELECT COUNT(*) FROM experience_rules").fetchone()[0]
            )
            tenants = int(self._conn.execute("SELECT COUNT(*) FROM tenants").fetchone()[0])
            history = int(self._conn.execute("SELECT COUNT(*) FROM history").fetchone()[0])
            buckets = int(
                self._conn.execute("SELECT COUNT(*) FROM quota_buckets").fetchone()[0]
            )
        return {
            "path": self.path,
            "cache_rows": cache_rows,
            "experience_rules": rule_rows,
            "tenants": tenants,
            "history_rows": history,
            "quota_buckets": buckets,
            "wal_bytes": self.wal_size(),
        }
