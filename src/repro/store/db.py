"""The persistence plane: one sqlite3 file under everything learned.

Everything the fleet accumulates — warm cache entries, the experience
base's symptom→failure rules, tenant identities and the diagnosis
history — used to die with the process.  :class:`DiagnosisStore` makes
that state a durable, versioned artifact on disk (stdlib ``sqlite3``
only), shared by every layer that owns state:

* **result cache rows** — the disk tier beneath
  :class:`~repro.store.cache.PersistentResultCache`: sealed
  ``(blob, sha256 digest)`` pairs keyed ``(namespace, content_hash)``,
  LRU-ordered by an access sequence and evicted by row count.  A row
  whose digest no longer matches its blob is *purged and reported* —
  bit rot degrades the hit rate, it never serves a poisoned result;
* **experience rules** — a versioned, per-tenant
  :class:`~repro.core.learning.ExperienceBase` projection.  Deltas
  merge with the exact noisy-or semantics of
  :meth:`ExperienceBase.merge` (``1 - (1-c1)(1-c2)``, occurrence
  counts summed) inside one write transaction, and every merge bumps
  the tenant's experience version — replicas can tell "restored state"
  from "new evidence";
* **tenants** — API-key identities (sha256 digests only; the plain
  key is printed once at provisioning and never stored) with
  per-tenant request quotas;
* **history** — one row per diagnosis outcome, the raw material the
  fleet-health report (:mod:`repro.store.reports`) folds into
  per-status counts, top culprits and latency percentiles.

Concurrency: the store opens in WAL mode so a crashed writer replays
cleanly on the next open (kill -9 mid-write loses at most the
uncommitted transaction) and replica *processes* sharing one file
coexist — WAL allows concurrent readers alongside a single writer,
with ``busy_timeout`` absorbing write collisions.  In-process, one
connection is shared behind an :class:`threading.RLock`; every public
method is safe to call from the server's executor threads.
"""

from __future__ import annotations

import hashlib
import json
import secrets
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.learning import rule_identity

__all__ = ["DiagnosisStore", "StoreError", "TenantRecord", "PUBLIC_TENANT"]

#: The namespace unauthenticated traffic lands in.  Serving without a
#: store (or without an API key) behaves exactly as before; the public
#: tenant just gives that traffic a durable home too.
PUBLIC_TENANT = "public"

_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cache_entries (
    namespace TEXT NOT NULL,
    key       TEXT NOT NULL,
    blob      TEXT NOT NULL,
    digest    TEXT NOT NULL,
    seq       INTEGER NOT NULL,
    PRIMARY KEY (namespace, key)
);
CREATE INDEX IF NOT EXISTS cache_entries_seq ON cache_entries (seq);
CREATE TABLE IF NOT EXISTS experience_meta (
    tenant         TEXT PRIMARY KEY,
    version        INTEGER NOT NULL,
    episode_count  INTEGER NOT NULL,
    base_certainty REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS experience_rules (
    tenant      TEXT NOT NULL,
    rule_key    TEXT NOT NULL,
    signature   TEXT NOT NULL,
    component   TEXT NOT NULL,
    mode        TEXT NOT NULL,
    certainty   REAL NOT NULL,
    occurrences INTEGER NOT NULL,
    version     INTEGER NOT NULL,
    PRIMARY KEY (tenant, rule_key)
);
CREATE TABLE IF NOT EXISTS tenants (
    tenant_id      TEXT PRIMARY KEY,
    name           TEXT NOT NULL,
    key_digest     TEXT NOT NULL UNIQUE,
    quota_limit    INTEGER NOT NULL,
    quota_interval REAL NOT NULL,
    created_at     REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS history (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    tenant       TEXT NOT NULL,
    unit         TEXT NOT NULL,
    content_hash TEXT NOT NULL,
    status       TEXT NOT NULL,
    consistent   INTEGER NOT NULL,
    top_culprit  TEXT NOT NULL,
    elapsed      REAL NOT NULL,
    cache_hit    INTEGER NOT NULL,
    created_at   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS history_tenant ON history (tenant);
"""


class StoreError(RuntimeError):
    """The store file is unusable (bad schema, undecodable rows, ...)."""


class TenantRecord:
    """One provisioned tenant, as read back from the store (no key)."""

    def __init__(
        self,
        tenant_id: str,
        name: str,
        quota_limit: int,
        quota_interval: float,
        created_at: float,
    ) -> None:
        self.tenant_id = tenant_id
        self.name = name
        self.quota_limit = int(quota_limit)
        self.quota_interval = float(quota_interval)
        self.created_at = float(created_at)

    def to_dict(self) -> Dict:
        return {
            "tenant_id": self.tenant_id,
            "name": self.name,
            "quota_limit": self.quota_limit,
            "quota_interval": self.quota_interval,
            "created_at": self.created_at,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TenantRecord({self.tenant_id!r}, quota={self.quota_limit}/{self.quota_interval:g}s)"


def _hash_key(api_key: str) -> str:
    return hashlib.sha256(api_key.encode()).hexdigest()


class DiagnosisStore:
    """The sqlite-backed persistence plane shared by cache/experience/tenants."""

    def __init__(self, path: Union[str, Path], busy_timeout: float = 5.0) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, timeout=busy_timeout
        )
        self._conn.isolation_level = None  # explicit transactions only
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("PRAGMA journal_mode=WAL")
            cur.execute("PRAGMA synchronous=NORMAL")
            cur.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
            # executescript manages its own transaction (and commits any
            # pending one), so the schema is not wrapped in BEGIN here.
            cur.executescript(_SCHEMA)
            cur.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(_SCHEMA_VERSION),),
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "DiagnosisStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _next_seq(self, cur: sqlite3.Cursor) -> int:
        row = cur.execute("SELECT COALESCE(MAX(seq), 0) FROM cache_entries").fetchone()
        return int(row[0]) + 1

    # ------------------------------------------------------------------
    # Cache rows (the disk tier)
    # ------------------------------------------------------------------
    def cache_get(self, namespace: str, key: str) -> Tuple[str, Optional[str]]:
        """Look one sealed row up: ``(status, blob)``.

        ``status`` is ``"hit"`` (the blob's digest verified), ``"miss"``
        (no such row) or ``"corrupt"`` (the stored digest no longer
        matches — the row has been purged; the caller counts it).  A hit
        refreshes the row's LRU sequence.
        """
        with self._lock:
            cur = self._conn.cursor()
            try:
                row = cur.execute(
                    "SELECT blob, digest FROM cache_entries WHERE namespace = ? AND key = ?",
                    (namespace, key),
                ).fetchone()
            except sqlite3.DatabaseError:
                return "corrupt", None
            if row is None:
                return "miss", None
            blob, digest = row
            if hashlib.sha256(blob.encode()).hexdigest() != digest:
                cur.execute("BEGIN IMMEDIATE")
                cur.execute(
                    "DELETE FROM cache_entries WHERE namespace = ? AND key = ?",
                    (namespace, key),
                )
                cur.execute("COMMIT")
                return "corrupt", None
            cur.execute("BEGIN IMMEDIATE")
            cur.execute(
                "UPDATE cache_entries SET seq = ? WHERE namespace = ? AND key = ?",
                (self._next_seq(cur), namespace, key),
            )
            cur.execute("COMMIT")
            return "hit", blob

    def cache_put(
        self, namespace: str, key: str, blob: str, digest: str, max_rows: int = 0
    ) -> int:
        """Write one sealed row through; returns rows evicted for space.

        ``max_rows`` bounds the *whole table* (all namespaces — the disk
        budget is per store file, not per tenant); 0 means unbounded.
        Eviction is LRU by the access sequence ``cache_get`` refreshes.
        """
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                cur.execute(
                    "INSERT OR REPLACE INTO cache_entries "
                    "(namespace, key, blob, digest, seq) VALUES (?, ?, ?, ?, ?)",
                    (namespace, key, blob, digest, self._next_seq(cur)),
                )
                evicted = 0
                if max_rows > 0:
                    count = int(
                        cur.execute("SELECT COUNT(*) FROM cache_entries").fetchone()[0]
                    )
                    overflow = count - max_rows
                    if overflow > 0:
                        cur.execute(
                            "DELETE FROM cache_entries WHERE rowid IN ("
                            "SELECT rowid FROM cache_entries ORDER BY seq ASC LIMIT ?)",
                            (overflow,),
                        )
                        evicted = overflow
                cur.execute("COMMIT")
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise
            return evicted

    def cache_rows(self, namespace: Optional[str] = None) -> int:
        with self._lock:
            if namespace is None:
                row = self._conn.execute("SELECT COUNT(*) FROM cache_entries").fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM cache_entries WHERE namespace = ?", (namespace,)
                ).fetchone()
            return int(row[0])

    def cache_tamper(self, namespace: str, key: str) -> bool:
        """Corrupt a stored blob in place (test/chaos hook).

        The next ``cache_get`` for the key sees the broken seal, purges
        the row and reports ``"corrupt"``.  True when the row existed.
        """
        with self._lock:
            cur = self._conn.cursor()
            row = cur.execute(
                "SELECT blob FROM cache_entries WHERE namespace = ? AND key = ?",
                (namespace, key),
            ).fetchone()
            if row is None:
                return False
            blob = row[0]
            tampered = blob[:-1] + ("x" if blob[-1:] != "x" else "y")
            cur.execute("BEGIN IMMEDIATE")
            cur.execute(
                "UPDATE cache_entries SET blob = ? WHERE namespace = ? AND key = ?",
                (tampered, namespace, key),
            )
            cur.execute("COMMIT")
            return True

    # ------------------------------------------------------------------
    # Experience (versioned, per tenant)
    # ------------------------------------------------------------------
    def experience_version(self, tenant: str) -> int:
        """The tenant's experience version (0 = nothing persisted yet)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT version FROM experience_meta WHERE tenant = ?", (tenant,)
            ).fetchone()
            return int(row[0]) if row else 0

    def load_experience(self, tenant: str) -> Tuple[Dict, int]:
        """The tenant's persisted base as an ``ExperienceBase.to_dict``
        payload, plus its version.  An unseen tenant loads empty at
        version 0."""
        with self._lock:
            meta = self._conn.execute(
                "SELECT version, episode_count, base_certainty "
                "FROM experience_meta WHERE tenant = ?",
                (tenant,),
            ).fetchone()
            if meta is None:
                return {"base_certainty": 0.6, "episode_count": 0, "rules": []}, 0
            version, episodes, base_certainty = meta
            rules = []
            for signature, component, mode, certainty, occurrences in self._conn.execute(
                "SELECT signature, component, mode, certainty, occurrences "
                "FROM experience_rules WHERE tenant = ? ORDER BY rule_key",
                (tenant,),
            ):
                try:
                    entries = json.loads(signature)
                except json.JSONDecodeError as exc:
                    raise StoreError(
                        f"undecodable experience signature for {tenant!r}: {exc}"
                    ) from None
                rules.append(
                    {
                        "signature": entries,
                        "component": component,
                        "mode": mode,
                        "certainty": float(certainty),
                        "occurrences": int(occurrences),
                    }
                )
            return {
                "base_certainty": float(base_certainty),
                "episode_count": int(episodes),
                "rules": rules,
            }, int(version)

    def merge_experience(self, tenant: str, delta: Dict) -> int:
        """Fold an experience delta in with noisy-or semantics; returns
        the tenant's new version.

        ``delta`` is an :meth:`ExperienceBase.to_dict` payload (often a
        single batch's worth of confirmations).  Matching rules combine
        certainty ``1 - (1-c1)(1-c2)`` and sum occurrences — byte-for-
        byte the semantics of :meth:`ExperienceBase.merge` — inside one
        transaction, so a crash mid-merge leaves the previous version
        intact.  An empty delta is a no-op (the version does not bump).
        """
        rules = delta.get("rules") or []
        episodes = int(delta.get("episode_count", 0))
        if not rules and not episodes:
            return self.experience_version(tenant)
        base_certainty = float(delta.get("base_certainty", 0.6))
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                meta = cur.execute(
                    "SELECT version, episode_count FROM experience_meta WHERE tenant = ?",
                    (tenant,),
                ).fetchone()
                version = (int(meta[0]) if meta else 0) + 1
                episode_count = (int(meta[1]) if meta else 0) + episodes
                for entry in rules:
                    signature = entry.get("signature") or []
                    component = str(entry.get("component", ""))
                    mode = str(entry.get("mode", ""))
                    certainty = float(entry.get("certainty", base_certainty))
                    occurrences = int(entry.get("occurrences", 1))
                    key = rule_identity(signature, component, mode)
                    row = cur.execute(
                        "SELECT certainty, occurrences FROM experience_rules "
                        "WHERE tenant = ? AND rule_key = ?",
                        (tenant, key),
                    ).fetchone()
                    if row is not None:
                        merged_certainty = 1.0 - (1.0 - float(row[0])) * (1.0 - certainty)
                        cur.execute(
                            "UPDATE experience_rules SET certainty = ?, occurrences = ?, "
                            "version = ? WHERE tenant = ? AND rule_key = ?",
                            (merged_certainty, int(row[1]) + occurrences, version, tenant, key),
                        )
                    else:
                        cur.execute(
                            "INSERT INTO experience_rules (tenant, rule_key, signature, "
                            "component, mode, certainty, occurrences, version) "
                            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                            (
                                tenant,
                                key,
                                json.dumps(
                                    [[str(p), str(b), int(d)] for p, b, d in signature],
                                    separators=(",", ":"),
                                ),
                                component,
                                mode,
                                certainty,
                                occurrences,
                                version,
                            ),
                        )
                cur.execute(
                    "INSERT INTO experience_meta (tenant, version, episode_count, "
                    "base_certainty) VALUES (?, ?, ?, ?) "
                    "ON CONFLICT(tenant) DO UPDATE SET version = ?, episode_count = ?",
                    (tenant, version, episode_count, base_certainty, version, episode_count),
                )
                cur.execute("COMMIT")
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise
            return version

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def provision_tenant(
        self,
        tenant_id: str,
        name: str = "",
        quota_limit: int = 0,
        quota_interval: float = 60.0,
        api_key: Optional[str] = None,
    ) -> str:
        """Create a tenant and return its API key (shown exactly once).

        Only the key's sha256 digest is stored; losing the key means
        re-provisioning.  ``quota_limit`` 0 means unlimited.
        """
        if not tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if ":" in tenant_id or "/" in tenant_id or any(c.isspace() for c in tenant_id):
            # ':' would collide with cache-key namespacing, '/' with the
            # report URL path; whitespace just invites header mangling.
            raise ValueError("tenant_id must not contain ':', '/' or whitespace")
        if quota_limit < 0:
            raise ValueError("quota_limit must be non-negative")
        if quota_interval <= 0:
            raise ValueError("quota_interval must be positive")
        key = api_key if api_key is not None else f"rk_{secrets.token_hex(16)}"
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                cur.execute(
                    "INSERT INTO tenants (tenant_id, name, key_digest, quota_limit, "
                    "quota_interval, created_at) VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        tenant_id,
                        name or tenant_id,
                        _hash_key(key),
                        int(quota_limit),
                        float(quota_interval),
                        time.time(),
                    ),
                )
                cur.execute("COMMIT")
            except sqlite3.IntegrityError:
                cur.execute("ROLLBACK")
                raise ValueError(f"tenant {tenant_id!r} already exists") from None
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise
        return key

    def resolve_api_key(self, api_key: str) -> Optional[TenantRecord]:
        """The tenant owning ``api_key``, or None (never raises on junk)."""
        if not api_key:
            return None
        with self._lock:
            row = self._conn.execute(
                "SELECT tenant_id, name, quota_limit, quota_interval, created_at "
                "FROM tenants WHERE key_digest = ?",
                (_hash_key(api_key),),
            ).fetchone()
        return TenantRecord(*row) if row else None

    def get_tenant(self, tenant_id: str) -> Optional[TenantRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT tenant_id, name, quota_limit, quota_interval, created_at "
                "FROM tenants WHERE tenant_id = ?",
                (tenant_id,),
            ).fetchone()
        return TenantRecord(*row) if row else None

    def list_tenants(self) -> List[TenantRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT tenant_id, name, quota_limit, quota_interval, created_at "
                "FROM tenants ORDER BY tenant_id"
            ).fetchall()
        return [TenantRecord(*row) for row in rows]

    # ------------------------------------------------------------------
    # History (the fleet-health report's raw material)
    # ------------------------------------------------------------------
    def record_history(
        self,
        tenant: str,
        unit: str,
        content_hash: str,
        status: str,
        consistent: bool,
        top_culprit: str,
        elapsed: float,
        cache_hit: bool,
    ) -> None:
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                cur.execute(
                    "INSERT INTO history (tenant, unit, content_hash, status, consistent, "
                    "top_culprit, elapsed, cache_hit, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        tenant,
                        unit,
                        content_hash,
                        status,
                        1 if consistent else 0,
                        top_culprit,
                        float(elapsed),
                        1 if cache_hit else 0,
                        time.time(),
                    ),
                )
                cur.execute("COMMIT")
            except sqlite3.DatabaseError:
                cur.execute("ROLLBACK")
                raise

    def history_rows(self, tenant: str, limit: int = 0) -> List[Dict]:
        """The tenant's diagnosis history, oldest first."""
        sql = (
            "SELECT unit, content_hash, status, consistent, top_culprit, elapsed, "
            "cache_hit, created_at FROM history WHERE tenant = ? ORDER BY id"
        )
        args: Tuple = (tenant,)
        if limit > 0:
            sql += " DESC LIMIT ?"
            args = (tenant, limit)
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        if limit > 0:
            rows = list(reversed(rows))
        return [
            {
                "unit": unit,
                "content_hash": content_hash,
                "status": status,
                "consistent": bool(consistent),
                "top_culprit": top_culprit,
                "elapsed": float(elapsed),
                "cache_hit": bool(cache_hit),
                "created_at": float(created_at),
            }
            for (unit, content_hash, status, consistent,
                 top_culprit, elapsed, cache_hit, created_at) in rows
        ]

    def history_count(self, tenant: str) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM history WHERE tenant = ?", (tenant,)
            ).fetchone()
            return int(row[0])

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Occupancy overview (the server folds this into ``/metrics``)."""
        with self._lock:
            cache_rows = int(
                self._conn.execute("SELECT COUNT(*) FROM cache_entries").fetchone()[0]
            )
            rule_rows = int(
                self._conn.execute("SELECT COUNT(*) FROM experience_rules").fetchone()[0]
            )
            tenants = int(self._conn.execute("SELECT COUNT(*) FROM tenants").fetchone()[0])
            history = int(self._conn.execute("SELECT COUNT(*) FROM history").fetchone()[0])
        return {
            "path": self.path,
            "cache_rows": cache_rows,
            "experience_rules": rule_rows,
            "tenants": tenants,
            "history_rows": history,
        }
