"""Defuzzification and membership-function helpers.

The best-test unit and the report generator repeatedly need to turn a
fuzzy quantity back into a representative scalar (to rank tests, to
print a single suspicion number) or to evaluate memberships over grids
(for plotting and for the figure-1 shape tests).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.fuzzy.interval import FuzzyInterval

__all__ = [
    "defuzzify_centroid",
    "defuzzify_mean_of_max",
    "defuzzify_bisector",
    "sample_membership",
    "breakpoints",
]


def defuzzify_centroid(value: FuzzyInterval) -> float:
    """Centre-of-gravity defuzzification (delegates to the interval)."""
    return value.centroid


def defuzzify_mean_of_max(value: FuzzyInterval) -> float:
    """Midpoint of the core — the mean of the maximising set."""
    return 0.5 * (value.m1 + value.m2)


def defuzzify_bisector(value: FuzzyInterval, tol: float = 1e-9) -> float:
    """The x splitting the membership area into two equal halves.

    Falls back to the core midpoint for degenerate (zero-area) values.
    """
    total = value.area
    if total <= tol:
        return defuzzify_mean_of_max(value)
    target = 0.5 * total
    acc = 0.0
    xs = breakpoints(value)
    for left, right in zip(xs, xs[1:]):
        width = right - left
        if width <= tol:
            continue
        mu_l, mu_r = value.membership(left), value.membership(right)
        piece = 0.5 * (mu_l + mu_r) * width
        if acc + piece < target:
            acc += piece
            continue
        # Solve for x within this linear piece: integral of the linear
        # membership from `left` to x equals target - acc.
        need = target - acc
        slope = (mu_r - mu_l) / width
        if abs(slope) <= tol:
            return left + need / mu_l if mu_l > tol else right
        # 0.5*slope*(x-left)^2 + mu_l*(x-left) = need
        a, b, c = 0.5 * slope, mu_l, -need
        disc = max(b * b - 4 * a * c, 0.0)
        dx = (-b + disc**0.5) / (2 * a)
        return left + max(0.0, min(dx, width))
    return xs[-1]


def sample_membership(value: FuzzyInterval, n: int = 101) -> List[Tuple[float, float]]:
    """``n`` evenly spaced ``(x, mu(x))`` samples across the support.

    Degenerate supports produce a single sample at the point.
    """
    lo, hi = value.support
    if hi - lo <= 0.0:
        return [(lo, 1.0)]
    if n < 2:
        raise ValueError("need at least two samples")
    step = (hi - lo) / (n - 1)
    return [(lo + i * step, value.membership(lo + i * step)) for i in range(n)]


def breakpoints(value: FuzzyInterval) -> Sequence[float]:
    """The sorted corner x-coordinates of the trapezoid."""
    lo, hi = value.support
    return sorted({lo, value.m1, value.m2, hi})
