"""Linguistic variables: fuzzy estimations of faultiness (paper section 8.1).

The best-test strategy unit replaces numeric a-priori probabilities with
*linguistic* faultiness estimations — fuzzy intervals over [0, 1] named
``correct``, ``likely correct`` ... ``faulty``.  The paper fixes two of
the terms (``Correct = [0, .05, 0, .05]`` and
``Likely correct = [.18, .34, .02, .06]``) and leaves the granularity to
the application; :func:`faultiness_scale` builds scales of any odd
granularity that include the published anchors at granularity 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.fuzzy.interval import FuzzyInterval

__all__ = ["LinguisticTerm", "LinguisticVariable", "faultiness_scale", "FAULTINESS_5"]


@dataclass(frozen=True)
class LinguisticTerm:
    """A named fuzzy subset of the variable's domain."""

    name: str
    value: FuzzyInterval

    def membership(self, x: float) -> float:
        return self.value.membership(x)


@dataclass
class LinguisticVariable:
    """A domain plus an ordered family of linguistic terms covering it."""

    name: str
    domain: tuple
    terms: List[LinguisticTerm] = field(default_factory=list)

    def __post_init__(self) -> None:
        lo, hi = self.domain
        if lo >= hi:
            raise ValueError(f"empty domain {self.domain}")
        names = [t.name for t in self.terms]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate term names in {names}")

    def term(self, name: str) -> LinguisticTerm:
        for t in self.terms:
            if t.name == name:
                return t
        raise KeyError(f"{self.name} has no term {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(t.name == name for t in self.terms)

    def memberships(self, x: float) -> Dict[str, float]:
        """Membership of ``x`` in every term (the fuzzification of ``x``)."""
        lo, hi = self.domain
        if not lo <= x <= hi:
            raise ValueError(f"{x} outside domain {self.domain}")
        return {t.name: t.membership(x) for t in self.terms}

    def classify(self, x: float) -> str:
        """Name of the best-matching term for a scalar ``x``.

        Ties break toward the earlier (more pessimistic-to-optimistic
        ordering is the caller's choice of term order) term, so the result
        is deterministic.
        """
        members = self.memberships(x)
        best = max(self.terms, key=lambda t: members[t.name])
        if members[best.name] > 0.0:
            return best.name
        # x falls in a coverage gap (the paper's published anchors leave
        # small gaps, e.g. (0.10, 0.16)): pick the nearest term by centroid.
        return min(self.terms, key=lambda t: abs(t.value.centroid - x)).name

    def match(self, value: FuzzyInterval) -> str:
        """Best-matching term for a *fuzzy* estimation, by possibility.

        Uses the supremum of the pointwise minimum between the estimation
        and each term (possibility of matching), breaking ties toward the
        term whose centroid is closest.
        """
        from repro.fuzzy.compare import possibility

        scored = [
            (possibility(value, t.value), -abs(value.centroid - t.value.centroid), t.name)
            for t in self.terms
        ]
        scored.sort(reverse=True)
        return scored[0][2]


#: Term names used for the canonical granularity-5 faultiness scale.
_FIVE_NAMES = ("correct", "likely correct", "unknown", "likely faulty", "faulty")


def faultiness_scale(granularity: int = 5) -> LinguisticVariable:
    """A faultiness linguistic variable on [0, 1].

    ``granularity`` must be odd and >= 3 so a neutral middle term exists.
    At granularity 5 the two low anchors are exactly the paper's published
    terms; the remaining terms mirror them symmetrically about 0.5 and the
    middle term covers the gap.
    """
    if granularity < 3 or granularity % 2 == 0:
        raise ValueError("granularity must be odd and >= 3")
    if granularity == 5:
        return FAULTINESS_5
    # Evenly spread triangular-ish terms; ends are shoulders.
    step = 1.0 / (granularity - 1)
    terms = []
    for i in range(granularity):
        centre = i * step
        lo = max(0.0, centre - step)
        hi = min(1.0, centre + step)
        core_lo = 0.0 if i == 0 else centre
        core_hi = 1.0 if i == granularity - 1 else centre
        value = FuzzyInterval.from_support_core((min(lo, core_lo), max(hi, core_hi)), (core_lo, core_hi))
        terms.append(LinguisticTerm(f"level_{i}", value))
    return LinguisticVariable(f"faultiness_{granularity}", (0.0, 1.0), terms)


def _five_scale() -> LinguisticVariable:
    terms = [
        # The two anchors published in the paper:
        LinguisticTerm("correct", FuzzyInterval(0.0, 0.05, 0.0, 0.05)),
        LinguisticTerm("likely correct", FuzzyInterval(0.18, 0.34, 0.02, 0.06)),
        LinguisticTerm("unknown", FuzzyInterval(0.42, 0.58, 0.06, 0.06)),
        # Mirrors of the anchors about 0.5:
        LinguisticTerm("likely faulty", FuzzyInterval(0.66, 0.82, 0.06, 0.02)),
        LinguisticTerm("faulty", FuzzyInterval(0.95, 1.0, 0.05, 0.0)),
    ]
    return LinguisticVariable("faultiness", (0.0, 1.0), terms)


#: The canonical 5-term faultiness scale (paper's anchors + mirrored terms).
FAULTINESS_5 = _five_scale()
