"""Fuzzy connectives: t-norms, t-conorms, negation and implication.

FLAMES combines degrees in several places — the validity of a model
guarded by several fuzzy assumptions, the certainty of a qualitative
rule firing, the degree of a nogood built from a chain of fuzzy
propagations.  All of these reduce to conjunction/disjunction of degrees
in [0, 1]; this module provides the standard families so the choice is a
single configurable parameter (the ablation benchmark sweeps it).
"""

from __future__ import annotations

from typing import Callable, Iterable

__all__ = [
    "TNorm",
    "TCoNorm",
    "t_norm_min",
    "t_norm_product",
    "t_norm_lukasiewicz",
    "s_norm_max",
    "s_norm_probabilistic",
    "s_norm_lukasiewicz",
    "negation",
    "implication_kleene_dienes",
    "implication_lukasiewicz",
    "implication_goedel",
    "fold",
    "T_NORMS",
    "S_NORMS",
]

#: A binary conjunction on degrees in [0, 1].
TNorm = Callable[[float, float], float]
#: A binary disjunction on degrees in [0, 1].
TCoNorm = Callable[[float, float], float]


def _check(x: float) -> float:
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"degree {x} outside [0, 1]")
    return x


def t_norm_min(a: float, b: float) -> float:
    """Goedel (minimum) t-norm — the paper's default conjunction."""
    return min(_check(a), _check(b))


def t_norm_product(a: float, b: float) -> float:
    """Product t-norm."""
    return _check(a) * _check(b)


def t_norm_lukasiewicz(a: float, b: float) -> float:
    """Lukasiewicz t-norm ``max(0, a + b - 1)``."""
    return max(0.0, _check(a) + _check(b) - 1.0)


def s_norm_max(a: float, b: float) -> float:
    """Maximum t-conorm — the paper's default disjunction."""
    return max(_check(a), _check(b))


def s_norm_probabilistic(a: float, b: float) -> float:
    """Probabilistic sum ``a + b - a*b``."""
    return _check(a) + _check(b) - a * b


def s_norm_lukasiewicz(a: float, b: float) -> float:
    """Bounded sum ``min(1, a + b)``."""
    return min(1.0, _check(a) + _check(b))


def negation(a: float) -> float:
    """Standard fuzzy negation ``1 - a``."""
    return 1.0 - _check(a)


def implication_kleene_dienes(a: float, b: float) -> float:
    """``max(1 - a, b)`` — material implication with standard negation."""
    return max(negation(a), _check(b))


def implication_lukasiewicz(a: float, b: float) -> float:
    """``min(1, 1 - a + b)``."""
    return min(1.0, 1.0 - _check(a) + _check(b))


def implication_goedel(a: float, b: float) -> float:
    """``1 if a <= b else b`` (residuum of the minimum t-norm)."""
    return 1.0 if _check(a) <= _check(b) else _check(b)


def fold(op: Callable[[float, float], float], degrees: Iterable[float], empty: float) -> float:
    """Fold a (co)norm over arbitrarily many degrees.

    ``empty`` is the neutral element returned for an empty sequence: 1 for
    t-norms, 0 for t-conorms.
    """
    result = empty
    seen = False
    for d in degrees:
        if not seen:
            result, seen = _check(d), True
        else:
            result = op(result, d)
    return result


#: Named registries used by the ablation drivers.
T_NORMS = {
    "min": t_norm_min,
    "product": t_norm_product,
    "lukasiewicz": t_norm_lukasiewicz,
}

S_NORMS = {
    "max": s_norm_max,
    "probabilistic": s_norm_probabilistic,
    "lukasiewicz": s_norm_lukasiewicz,
}
