"""Linguistic hedges: *very*, *somewhat*, *roughly* ...

The expert's semi-qualitative vocabulary (paper §5: "a simple while
accurate (said semi-qualitative) representation of the human
expertise") needs modifiers — "R2 has to be **very** low", "the output
is **somewhat** high".  Classical hedges act on membership functions
(``very A = A²``, ``somewhat A = sqrt(A)``); powers of a trapezoid are
not trapezoidal, so we use the standard alpha-cut construction: the
hedged set keeps the core and rescales the slopes so that its 0.5-cut
matches the 0.5-cut of the exact power transform.  That preserves the
two invariants that matter for the engine:

* ``very A`` is contained in ``A`` (concentration),
* ``A`` is contained in ``somewhat A`` (dilation),

and keeps every hedged value a plain :class:`FuzzyInterval`.
"""

from __future__ import annotations


from repro.fuzzy.interval import FuzzyInterval

__all__ = ["very", "somewhat", "roughly", "concentrate", "dilate", "about"]


def concentrate(value: FuzzyInterval, power: float = 2.0) -> FuzzyInterval:
    """Concentration hedge: membership raised to ``power`` (> 1).

    The trapezoidal approximation keeps the core and shrinks the slopes
    so the 0.5-cut coincides with the exact transform's
    (``mu^p = 0.5  <=>  mu = 0.5^(1/p)``).
    """
    if power <= 1.0:
        raise ValueError("concentration needs power > 1; use dilate() otherwise")
    # Exact transform's 0.5-cut sits where mu = 0.5**(1/power); on a
    # linear slope that is at fraction (1 - 0.5**(1/power)) from the core.
    # Matching 0.5-cuts scales the slope width by 0.5 / (1 - 0.5**(1/p)).
    scale = 0.5 / (1.0 - 0.5 ** (1.0 / power))
    return FuzzyInterval(
        value.m1, value.m2, value.alpha / scale, value.beta / scale
    )


def dilate(value: FuzzyInterval, power: float = 2.0) -> FuzzyInterval:
    """Dilation hedge: membership raised to ``1/power`` (widens slopes)."""
    if power <= 1.0:
        raise ValueError("dilation needs power > 1; use concentrate() otherwise")
    scale = 0.5 / (1.0 - 0.5 ** power)
    return FuzzyInterval(
        value.m1, value.m2, value.alpha / scale, value.beta / scale
    )


def very(value: FuzzyInterval) -> FuzzyInterval:
    """``very A``: the classical concentration (power 2)."""
    return concentrate(value, 2.0)


def somewhat(value: FuzzyInterval) -> FuzzyInterval:
    """``somewhat A``: the classical dilation (power 2)."""
    return dilate(value, 2.0)


def roughly(value: FuzzyInterval, widen: float = 0.5) -> FuzzyInterval:
    """``roughly A``: widen both the slopes *and* the core by a fraction
    of the support width — the hedge experts use for eyeballed values."""
    if widen < 0:
        raise ValueError("widen must be non-negative")
    extra = widen * max(value.width, abs(value.centroid) * 0.1, 1e-12) / 2.0
    return FuzzyInterval(
        value.m1 - extra / 2.0,
        value.m2 + extra / 2.0,
        value.alpha + extra,
        value.beta + extra,
    )


def about(value: float, spread_fraction: float = 0.1) -> FuzzyInterval:
    """``about x``: a fuzzy number with slopes a fraction of ``|x|``.

    The expert shorthand for an eyeballed magnitude (``about 6 volts``);
    zero gets a small absolute spread so the set is never degenerate.
    """
    if spread_fraction <= 0:
        raise ValueError("spread fraction must be positive")
    spread = abs(value) * spread_fraction
    if spread == 0.0:
        spread = spread_fraction
    return FuzzyInterval.number(value, spread)
