"""Fuzzy Shannon entropy and expected entropy (paper section 8.2).

The best-test unit scores a candidate probe by the entropy of the fuzzy
faultiness estimations it would leave behind:

    ``Ent(S) = (+)_i  Fi (*) log2(1 / Fi)``

where ``Fi`` is the fuzzy faultiness estimation of component ``i`` and
the operations are the fuzzy ones.  The literal product form treats
``Fi`` and ``log2(1/Fi)`` as independent, which inflates the spread of
the result; the extension-principle form applies the scalar function
``g(x) = -x log2 x`` directly to each ``Fi`` (its unique maximum at
``x = 1/e`` handled exactly).  We default to the extension-principle
form and keep the literal form available for the ablation benchmark.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.fuzzy.interval import FuzzyInterval

__all__ = [
    "entropy_term",
    "entropy_term_product_form",
    "fuzzy_entropy",
    "expected_entropy",
]

#: Values of Fi are clamped into [_FLOOR, 1] before taking logarithms.
_FLOOR = 1e-9

#: Argmax of g(x) = -x log2 x on (0, 1].
_G_PEAK = 1.0 / math.e


def _g(x: float) -> float:
    """The Shannon term ``-x log2 x`` extended continuously to x = 0."""
    x = min(max(x, 0.0), 1.0)
    if x <= _FLOOR:
        return 0.0
    return -x * math.log2(x)


def _clamp_unit(value: FuzzyInterval) -> FuzzyInterval:
    """Clamp a fuzzy estimation into the unit interval."""
    s_lo, s_hi = value.support
    c_lo, c_hi = value.core
    clip = lambda x: min(max(x, 0.0), 1.0)
    return FuzzyInterval.from_support_core(
        (clip(s_lo), clip(s_hi)), (clip(c_lo), clip(c_hi))
    )


def entropy_term(fi: FuzzyInterval) -> FuzzyInterval:
    """``g(Fi)`` via the extension principle (default, tight form)."""
    return _clamped_unimodal(fi)


def _clamped_unimodal(fi: FuzzyInterval) -> FuzzyInterval:
    return _clamp_unit(fi).apply_unimodal(_g, _G_PEAK, maximum=True)


def entropy_term_product_form(fi: FuzzyInterval) -> FuzzyInterval:
    """``Fi (*) log2(1/Fi)`` computed as an independent fuzzy product.

    The paper's literal formula; wider than :func:`entropy_term` because
    it ignores the dependence between the two factors.  The result is
    clamped below at zero (entropy contributions cannot be negative).
    """
    fi = _clamp_unit(fi)
    floored = FuzzyInterval.from_support_core(
        (max(fi.support[0], _FLOOR), max(fi.support[1], _FLOOR)),
        (max(fi.m1, _FLOOR), max(fi.m2, _FLOOR)),
    )
    log_term = floored.apply_monotone(lambda x: math.log2(1.0 / x), increasing=False)
    raw = floored * log_term
    clip = lambda x: max(x, 0.0)
    return FuzzyInterval.from_support_core(
        (clip(raw.support[0]), clip(raw.support[1])),
        (clip(raw.m1), clip(raw.m2)),
    )


def fuzzy_entropy(
    estimations: Iterable[FuzzyInterval],
    term: Callable[[FuzzyInterval], FuzzyInterval] = entropy_term,
) -> FuzzyInterval:
    """Entropy of a system of fuzzy faultiness estimations.

    ``Ent(S) = sum_i g(Fi)`` with fuzzy addition (exact for trapezoids).
    An empty system has zero entropy.
    """
    total = FuzzyInterval.crisp(0.0)
    for fi in estimations:
        total = total + term(fi)
    return total


def expected_entropy(
    outcome_entropies: Sequence[FuzzyInterval],
    outcome_weights: Sequence[FuzzyInterval | float] | None = None,
) -> FuzzyInterval:
    """Expected entropy of a test over its possible outcomes.

    Each outcome ``k`` of the candidate measurement leaves the system in a
    state with entropy ``outcome_entropies[k]``; ``outcome_weights[k]``
    (fuzzy or crisp, defaulting to uniform) estimates how likely that
    outcome is.  Weights are normalised by their crisp total so that
    degenerate all-zero weights fall back to the uniform case.
    """
    n = len(outcome_entropies)
    if n == 0:
        raise ValueError("a test must have at least one outcome")
    if outcome_weights is None:
        weights: Sequence[FuzzyInterval] = [FuzzyInterval.crisp(1.0 / n)] * n
    else:
        if len(outcome_weights) != n:
            raise ValueError("one weight per outcome required")
        coerced = [
            w if isinstance(w, FuzzyInterval) else FuzzyInterval.crisp(float(w))
            for w in outcome_weights
        ]
        total = sum(w.centroid for w in coerced)
        if total <= 0.0:
            weights = [FuzzyInterval.crisp(1.0 / n)] * n
        else:
            weights = [w.scale(1.0 / total) for w in coerced]
    expected = FuzzyInterval.crisp(0.0)
    for ent, w in zip(outcome_entropies, weights):
        expected = expected + ent * w
    return expected
