"""Fuzzy-arithmetic substrate for FLAMES.

The paper represents every quantity — crisp numbers, crisp intervals,
fuzzy numbers and fuzzy intervals — with a single trapezoidal 4-tuple
``[m1, m2, alpha, beta]`` (its figure 1) and computes with the
Bonissone/Decker LR arithmetic.  This package implements that
representation, the associated arithmetic, the degree-of-consistency
``Dc`` used by the conflict-recognition engine, linguistic variables for
faultiness estimation, and the fuzzy Shannon entropy used by the
best-test strategy unit.
"""

from repro.fuzzy.interval import FuzzyInterval
from repro.fuzzy.compare import (
    Consistency,
    consistency,
    necessity,
    possibility,
    rank_key,
)
from repro.fuzzy.linguistic import LinguisticTerm, LinguisticVariable, faultiness_scale
from repro.fuzzy.entropy import fuzzy_entropy, expected_entropy
from repro.fuzzy.hedges import very, somewhat, roughly, about, concentrate, dilate
from repro.fuzzy.logic import (
    TNorm,
    TCoNorm,
    t_norm_min,
    t_norm_product,
    t_norm_lukasiewicz,
    s_norm_max,
    s_norm_probabilistic,
    s_norm_lukasiewicz,
    negation,
)

__all__ = [
    "FuzzyInterval",
    "Consistency",
    "consistency",
    "possibility",
    "necessity",
    "rank_key",
    "LinguisticTerm",
    "LinguisticVariable",
    "faultiness_scale",
    "fuzzy_entropy",
    "expected_entropy",
    "very",
    "somewhat",
    "roughly",
    "about",
    "concentrate",
    "dilate",
    "TNorm",
    "TCoNorm",
    "t_norm_min",
    "t_norm_product",
    "t_norm_lukasiewicz",
    "s_norm_max",
    "s_norm_probabilistic",
    "s_norm_lukasiewicz",
    "negation",
]
