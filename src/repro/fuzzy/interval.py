"""Trapezoidal fuzzy intervals (the paper's figure 1).

A fuzzy interval is stored as the 4-tuple ``[m1, m2, alpha, beta]``:

* ``[m1, m2]`` is the *core* (membership 1),
* ``alpha`` is the width of the left slope (support reaches ``m1 - alpha``),
* ``beta`` is the width of the right slope (support reaches ``m2 + beta``).

This uniformly encodes

* a crisp number ``m``        as ``[m, m, 0, 0]``,
* a crisp interval ``[a, b]`` as ``[a, b, 0, 0]``,
* a fuzzy number ``m``        as ``[m, m, alpha, beta]``,
* a fuzzy interval            as the general 4-tuple,

which is exactly the representation FLAMES propagates through circuit
constraints.

Arithmetic follows the Bonissone/Decker LR rules quoted in the paper
(addition and subtraction are exact for trapezoids); multiplication,
division and general monotone function application use the alpha-cut
method, exact at the 0- and 1-cuts and linear in between, which is the
standard trapezoidal approximation and is valid for operands of any
sign.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Tuple

__all__ = ["FuzzyInterval"]

#: Absolute tolerance used for degeneracy checks (zero-width slopes etc.).
_EPS = 1e-12


def _interval_mul(a: Tuple[float, float], b: Tuple[float, float]) -> Tuple[float, float]:
    """Exact product of two crisp intervals."""
    products = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return min(products), max(products)


def _interval_div(a: Tuple[float, float], b: Tuple[float, float]) -> Tuple[float, float]:
    """Exact quotient of two crisp intervals; ``b`` must exclude zero."""
    if b[0] <= 0.0 <= b[1]:
        raise ZeroDivisionError("fuzzy division by an interval containing zero")
    quotients = (a[0] / b[0], a[0] / b[1], a[1] / b[0], a[1] / b[1])
    if not all(math.isfinite(q) for q in quotients):
        # A denormal-small divisor overflows the quotient; treat it the
        # same as dividing by zero so results stay finite intervals.
        raise ZeroDivisionError("fuzzy division by an interval touching zero")
    return min(quotients), max(quotients)


@dataclass(frozen=True)
class FuzzyInterval:
    """A trapezoidal fuzzy interval ``[m1, m2, alpha, beta]``.

    Instances are immutable and hashable so they can be used as node
    values inside the ATMS and memoised by the propagation engine.
    """

    m1: float
    m2: float
    alpha: float = 0.0
    beta: float = 0.0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.m1) and math.isfinite(self.m2)):
            raise ValueError("fuzzy interval core must be finite")
        if not (math.isfinite(self.alpha) and math.isfinite(self.beta)):
            raise ValueError("fuzzy interval slope widths must be finite")
        if self.m1 > self.m2 + _EPS:
            raise ValueError(f"inverted core [{self.m1}, {self.m2}]")
        if self.alpha < -_EPS or self.beta < -_EPS:
            raise ValueError("slope widths must be non-negative")
        # Normalise tiny negative noise from float arithmetic.
        object.__setattr__(self, "alpha", max(self.alpha, 0.0))
        object.__setattr__(self, "beta", max(self.beta, 0.0))
        if self.m1 > self.m2:  # within _EPS; collapse
            mid = 0.5 * (self.m1 + self.m2)
            object.__setattr__(self, "m1", mid)
            object.__setattr__(self, "m2", mid)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def crisp(cls, value: float) -> "FuzzyInterval":
        """A crisp real number ``[m, m, 0, 0]``."""
        return cls(value, value, 0.0, 0.0)

    @classmethod
    def crisp_interval(cls, low: float, high: float) -> "FuzzyInterval":
        """A crisp interval ``[a, b, 0, 0]``."""
        return cls(low, high, 0.0, 0.0)

    @classmethod
    def number(cls, value: float, alpha: float, beta: float | None = None) -> "FuzzyInterval":
        """A fuzzy number ``[m, m, alpha, beta]`` (``beta`` defaults to ``alpha``)."""
        return cls(value, value, alpha, alpha if beta is None else beta)

    @classmethod
    def triangular(cls, low: float, peak: float, high: float) -> "FuzzyInterval":
        """A triangular fuzzy number with support ``[low, high]`` and core ``peak``."""
        if not low <= peak <= high:
            raise ValueError("triangular requires low <= peak <= high")
        return cls(peak, peak, peak - low, high - peak)

    @classmethod
    def from_support_core(
        cls, support: Tuple[float, float], core: Tuple[float, float]
    ) -> "FuzzyInterval":
        """Build from explicit support and core intervals (core within support)."""
        (s_lo, s_hi), (c_lo, c_hi) = support, core
        if not (s_lo <= c_lo + _EPS and c_hi <= s_hi + _EPS and c_lo <= c_hi + _EPS):
            raise ValueError(f"core {core} must lie within support {support}")
        c_lo = max(c_lo, s_lo)
        c_hi = min(max(c_hi, c_lo), s_hi)
        return cls(c_lo, c_hi, c_lo - s_lo, s_hi - c_hi)

    @classmethod
    def around(cls, value: float, tolerance: float) -> "FuzzyInterval":
        """A fuzzy number for ``value`` with relative ``tolerance`` as slope width.

        ``around(100, 0.05)`` models a nominally 100-valued component with a
        5 % soft tolerance — the typical way FLAMES encodes datasheet
        tolerances.
        """
        spread = abs(value) * tolerance
        return cls(value, value, spread, spread)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def support(self) -> Tuple[float, float]:
        """The closure of ``{x : mu(x) > 0}``."""
        return (self.m1 - self.alpha, self.m2 + self.beta)

    @property
    def core(self) -> Tuple[float, float]:
        """The set ``{x : mu(x) == 1}``."""
        return (self.m1, self.m2)

    @property
    def is_crisp_number(self) -> bool:
        return self.m1 == self.m2 and self.alpha == 0.0 and self.beta == 0.0

    @property
    def is_crisp_interval(self) -> bool:
        return self.alpha == 0.0 and self.beta == 0.0

    @property
    def is_fuzzy_number(self) -> bool:
        return self.m1 == self.m2

    @property
    def width(self) -> float:
        """Width of the support."""
        lo, hi = self.support
        return hi - lo

    @property
    def area(self) -> float:
        """Area under the membership function: ``(m2-m1) + (alpha+beta)/2``.

        This is the denominator of the paper's degree of consistency
        ``Dc = area(Vm intersect Vn) / area(Vm)``.
        """
        return (self.m2 - self.m1) + 0.5 * (self.alpha + self.beta)

    @property
    def centroid(self) -> float:
        """Centre of gravity of the membership function.

        For a degenerate (zero-area) interval this is the midpoint of the
        core, which is the natural limit.
        """
        if self.area <= _EPS:
            return 0.5 * (self.m1 + self.m2)
        s_lo, s_hi = self.support
        # Decompose into left triangle, core rectangle, right triangle.
        pieces = (
            (self.alpha / 2.0, s_lo + 2.0 * self.alpha / 3.0),
            (self.m2 - self.m1, 0.5 * (self.m1 + self.m2)),
            (self.beta / 2.0, self.m2 + self.beta / 3.0),
        )
        total = sum(a for a, _ in pieces)
        return sum(a * c for a, c in pieces) / total

    def membership(self, x: float) -> float:
        """Membership degree ``mu(x)`` of a real ``x`` (figure 1's formula)."""
        if x < self.m1:
            if self.alpha == 0.0:
                return 0.0
            return max(0.0, (x - self.m1 + self.alpha) / self.alpha)
        if x > self.m2:
            if self.beta == 0.0:
                return 0.0
            return max(0.0, (self.m2 + self.beta - x) / self.beta)
        return 1.0

    def alpha_cut(self, level: float) -> Tuple[float, float]:
        """The crisp interval ``{x : mu(x) >= level}`` for ``level`` in (0, 1]."""
        if not 0.0 < level <= 1.0:
            raise ValueError("alpha-cut level must be in (0, 1]")
        return (
            self.m1 - self.alpha * (1.0 - level),
            self.m2 + self.beta * (1.0 - level),
        )

    def contains(self, other: "FuzzyInterval") -> bool:
        """Fuzzy-set inclusion: ``other``'s membership never exceeds ours.

        For trapezoids this holds iff both the support and the core of
        ``other`` are nested in ours *and* the slopes do not cross, which
        reduces to cut containment at levels 0 and 1 (slopes are linear).
        """
        s_lo, s_hi = self.support
        o_lo, o_hi = other.support
        return (
            s_lo - _EPS <= o_lo
            and o_hi <= s_hi + _EPS
            and self.m1 - _EPS <= other.m1
            and other.m2 <= self.m2 + _EPS
        )

    def blur(self, extra: float) -> "FuzzyInterval":
        """Widen both slopes by ``extra`` (models added measurement imprecision)."""
        if extra < 0:
            raise ValueError("blur amount must be non-negative")
        return FuzzyInterval(self.m1, self.m2, self.alpha + extra, self.beta + extra)

    # ------------------------------------------------------------------
    # Arithmetic (Bonissone/Decker LR rules; see module docstring)
    # ------------------------------------------------------------------
    def __add__(self, other: "FuzzyInterval | float | int") -> "FuzzyInterval":
        other = _coerce(other)
        return FuzzyInterval(
            self.m1 + other.m1,
            self.m2 + other.m2,
            self.alpha + other.alpha,
            self.beta + other.beta,
        )

    __radd__ = __add__

    def __neg__(self) -> "FuzzyInterval":
        return FuzzyInterval(-self.m2, -self.m1, self.beta, self.alpha)

    def __sub__(self, other: "FuzzyInterval | float | int") -> "FuzzyInterval":
        other = _coerce(other)
        return FuzzyInterval(
            self.m1 - other.m2,
            self.m2 - other.m1,
            self.alpha + other.beta,
            self.beta + other.alpha,
        )

    def __rsub__(self, other: "FuzzyInterval | float | int") -> "FuzzyInterval":
        return _coerce(other) - self

    def __mul__(self, other: "FuzzyInterval | float | int") -> "FuzzyInterval":
        other = _coerce(other)
        core = _interval_mul(self.core, other.core)
        supp = _interval_mul(self.support, other.support)
        return FuzzyInterval.from_support_core(supp, core)

    __rmul__ = __mul__

    def __truediv__(self, other: "FuzzyInterval | float | int") -> "FuzzyInterval":
        other = _coerce(other)
        core = _interval_div(self.core, other.core)
        supp = _interval_div(self.support, other.support)
        return FuzzyInterval.from_support_core(supp, core)

    def __rtruediv__(self, other: "FuzzyInterval | float | int") -> "FuzzyInterval":
        return _coerce(other) / self

    def reciprocal(self) -> "FuzzyInterval":
        """``1 / self``; the support must exclude zero."""
        return FuzzyInterval.crisp(1.0) / self

    def scale(self, k: float) -> "FuzzyInterval":
        """Multiplication by a crisp scalar (exact, not an approximation)."""
        if k >= 0:
            return FuzzyInterval(k * self.m1, k * self.m2, k * self.alpha, k * self.beta)
        return FuzzyInterval(k * self.m2, k * self.m1, -k * self.beta, -k * self.alpha)

    def apply_monotone(self, func: Callable[[float], float], increasing: bool = True) -> "FuzzyInterval":
        """Image of this fuzzy interval under a monotone real function.

        Uses the extension principle on the 0- and 1-cuts (exact at those
        levels, linear in between).  ``func`` must be monotone over the
        support.
        """
        s_lo, s_hi = self.support
        pts_core = sorted((func(self.m1), func(self.m2)))
        pts_supp = sorted((func(s_lo), func(s_hi)))
        if not increasing:
            # sorted() already reorders; nothing else differs.
            pass
        return FuzzyInterval.from_support_core(
            (min(pts_supp[0], pts_core[0]), max(pts_supp[1], pts_core[1])),
            (pts_core[0], pts_core[1]),
        )

    def apply_unimodal(
        self, func: Callable[[float], float], peak_x: float, maximum: bool = True
    ) -> "FuzzyInterval":
        """Image under a unimodal function with known extremum at ``peak_x``.

        Needed for the entropy term ``g(x) = -x log2 x`` whose maximum sits
        at ``1/e``: the image of a cut interval ``[a, b]`` is
        ``[min(g(a), g(b)), g(peak)]`` when the peak lies inside and the
        function attains a maximum there (symmetrically for a minimum).
        """

        def image(cut: Tuple[float, float]) -> Tuple[float, float]:
            a, b = cut
            lo, hi = sorted((func(a), func(b)))
            if a <= peak_x <= b:
                peak_val = func(peak_x)
                if maximum:
                    hi = max(hi, peak_val)
                else:
                    lo = min(lo, peak_val)
            return lo, hi

        core = image(self.core)
        supp = image(self.support)
        return FuzzyInterval.from_support_core(
            (min(supp[0], core[0]), max(supp[1], core[1])), core
        )

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def overlaps(self, other: "FuzzyInterval") -> bool:
        """True when the supports intersect (including at a single point)."""
        a_lo, a_hi = self.support
        b_lo, b_hi = other.support
        return a_lo <= b_hi + _EPS and b_lo <= a_hi + _EPS

    def intersection_area(self, other: "FuzzyInterval") -> float:
        """Exact area under ``min(mu_self, mu_other)``.

        Both membership functions are piecewise linear, so their pointwise
        minimum is piecewise linear with breakpoints at the trapezoid
        corners and at slope crossings; on each sub-segment the integral
        equals the midpoint value times the width.

        Degenerate operands (zero area) contribute zero area; callers that
        need a *degree* for a crisp point should use
        :func:`repro.fuzzy.compare.consistency`, which falls back to the
        membership degree.
        """
        if not self.overlaps(other):
            return 0.0
        xs = set()
        for fz in (self, other):
            s_lo, s_hi = fz.support
            xs.update((s_lo, fz.m1, fz.m2, s_hi))
        xs.update(_slope_crossings(self, other))
        lo = max(self.support[0], other.support[0])
        hi = min(self.support[1], other.support[1])
        grid = sorted(x for x in xs if lo - _EPS <= x <= hi + _EPS)
        if not grid or grid[0] > lo:
            grid.insert(0, lo)
        if grid[-1] < hi:
            grid.append(hi)
        total = 0.0
        for left, right in zip(grid, grid[1:]):
            if right - left <= _EPS:
                continue
            mid = 0.5 * (left + right)
            total += min(self.membership(mid), other.membership(mid)) * (right - left)
        return total

    def intersection_hull(self, other: "FuzzyInterval") -> "FuzzyInterval | None":
        """Trapezoidal hull of ``min(mu_self, mu_other)``, or ``None`` if disjoint.

        Used by the propagation engine to *narrow* a quantity's label when
        two fuzzy values for it must both hold: support = intersection of
        supports; core = intersection of cores when non-empty, otherwise
        collapsed to the highest-membership point of the minimum.
        """
        if not self.overlaps(other):
            return None
        s_lo = max(self.support[0], other.support[0])
        s_hi = min(self.support[1], other.support[1])
        c_lo = max(self.m1, other.m1)
        c_hi = min(self.m2, other.m2)
        if c_lo <= c_hi:
            return FuzzyInterval.from_support_core((s_lo, s_hi), (c_lo, c_hi))
        # Cores disjoint: the minimum peaks where the falling slope of the
        # lower trapezoid meets the rising slope of the upper one.
        peak = _peak_of_min(self, other, s_lo, s_hi)
        return FuzzyInterval.from_support_core((s_lo, s_hi), (peak, peak))

    def union_hull(self, other: "FuzzyInterval") -> "FuzzyInterval":
        """Trapezoidal hull of ``max(mu_self, mu_other)`` (convex envelope)."""
        s_lo = min(self.support[0], other.support[0])
        s_hi = max(self.support[1], other.support[1])
        c_lo = min(self.m1, other.m1)
        c_hi = max(self.m2, other.m2)
        return FuzzyInterval.from_support_core((s_lo, s_hi), (c_lo, c_hi))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def is_close(self, other: "FuzzyInterval", tol: float = 1e-9) -> bool:
        """Component-wise approximate equality."""
        return (
            abs(self.m1 - other.m1) <= tol
            and abs(self.m2 - other.m2) <= tol
            and abs(self.alpha - other.alpha) <= tol
            and abs(self.beta - other.beta) <= tol
        )

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.m1, self.m2, self.alpha, self.beta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.m1:g},{self.m2:g},{self.alpha:g},{self.beta:g}]"
        )


def _coerce(value: "FuzzyInterval | float | int") -> FuzzyInterval:
    if isinstance(value, FuzzyInterval):
        return value
    if isinstance(value, (int, float)):
        return FuzzyInterval.crisp(float(value))
    raise TypeError(f"cannot interpret {value!r} as a fuzzy interval")


def _segments(fz: FuzzyInterval) -> Iterable[Tuple[float, float, float, float]]:
    """Non-degenerate linear pieces of ``fz``'s membership as (x0, y0, x1, y1)."""
    s_lo, s_hi = fz.support
    pieces = ((s_lo, 0.0, fz.m1, 1.0), (fz.m1, 1.0, fz.m2, 1.0), (fz.m2, 1.0, s_hi, 0.0))
    return [p for p in pieces if p[2] - p[0] > _EPS]


def _slope_crossings(a: FuzzyInterval, b: FuzzyInterval) -> Iterable[float]:
    """x-coordinates where a linear piece of ``a`` crosses one of ``b``."""
    crossings = []
    for x0, y0, x1, y1 in _segments(a):
        slope_a = (y1 - y0) / (x1 - x0)
        for u0, v0, u1, v1 in _segments(b):
            slope_b = (v1 - v0) / (u1 - u0)
            if abs(slope_a - slope_b) <= _EPS:
                continue
            # Solve y0 + sa (x - x0) = v0 + sb (x - u0).
            x = (v0 - y0 + slope_a * x0 - slope_b * u0) / (slope_a - slope_b)
            if max(x0, u0) - _EPS <= x <= min(x1, u1) + _EPS:
                crossings.append(x)
    return crossings


def _peak_of_min(a: FuzzyInterval, b: FuzzyInterval, lo: float, hi: float) -> float:
    """Argmax of ``min(mu_a, mu_b)`` over [lo, hi] for core-disjoint trapezoids."""
    candidates = [lo, hi]
    candidates.extend(x for x in _slope_crossings(a, b) if lo - _EPS <= x <= hi + _EPS)
    best_x, best_v = lo, -1.0
    for x in candidates:
        v = min(a.membership(x), b.membership(x))
        if v > best_v:
            best_x, best_v = x, v
    return min(max(best_x, lo), hi)
