"""Comparing fuzzy values: degree of consistency ``Dc`` and related measures.

The conflict-recognition engine of FLAMES evaluates every *coincidence*
(a measured or propagated value meeting a predicted one) through the
degree of consistency

    ``Dc = area(Vm intersect Vn) / area(Vm)``

which is 1 when the measured value ``Vm`` is included in the nominal
``Vn``, 0 when they are disjoint, and strictly between otherwise
(paper section 6.1.2).  Figure 7 additionally reports a *signed* Dc
(``-1`` for a total conflict where the measurement sits below the
nominal value); the running text only sketches that convention, so we
expose the full ``(degree, direction)`` pair and derive the scalar view
from it — see DESIGN.md section 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fuzzy.interval import FuzzyInterval

__all__ = ["Consistency", "consistency", "possibility", "necessity", "rank_key"]

_EPS = 1e-12


@dataclass(frozen=True)
class Consistency:
    """Result of comparing a measured value against a nominal one.

    Attributes:
        degree: the paper's ``Dc`` in [0, 1] — 1 means the measurement is
            fully consistent with (included in) the nominal value.
        direction: where the measurement sits relative to the nominal
            value: ``-1`` below, ``+1`` above, ``0`` aligned.  The
            direction is meaningful even for partial conflicts and is what
            lets figure 7 conclude "R2 is very low or R3 is very high"
            from the sign alone.
    """

    degree: float
    direction: int

    @property
    def signed(self) -> float:
        """Scalar view matching the numbers figure 7 prints.

        Overlapping values report ``degree``; totally disjoint values
        report ``+/-1`` with the sign giving the deviation direction.
        """
        if self.degree > 0.0:
            return self.degree
        return float(self.direction) if self.direction else 0.0

    @property
    def is_corroboration(self) -> bool:
        """The measurement lies entirely within the nominal value."""
        return self.degree >= 1.0 - _EPS

    @property
    def is_total_conflict(self) -> bool:
        return self.degree <= _EPS

    @property
    def is_partial_conflict(self) -> bool:
        return _EPS < self.degree < 1.0 - _EPS

    @property
    def conflict_degree(self) -> float:
        """``1 - Dc`` — the degree attached to the resulting nogood."""
        return 1.0 - self.degree


def consistency(measured: FuzzyInterval, nominal: FuzzyInterval) -> Consistency:
    """Degree of consistency of ``measured`` with ``nominal``.

    ``Dc = area(Vm intersect Vn) / area(Vm)``.  Two degenerate cases keep
    the definition total:

    * a crisp *point* measurement has zero area; its degree is the
      nominal membership at that point (the possibilistic limit);
    * if both operands are points, the degree is 1 when they coincide.
    """
    direction = _direction(measured, nominal)
    if nominal.contains(measured):
        return Consistency(1.0, direction)
    m_area = measured.area
    if m_area <= _EPS:
        point = 0.5 * (measured.m1 + measured.m2)
        return Consistency(nominal.membership(point), direction)
    if nominal.area <= _EPS:
        # Nominal is a crisp point: consistent exactly to the measured
        # membership at that point (symmetric possibilistic fallback).
        point = 0.5 * (nominal.m1 + nominal.m2)
        return Consistency(measured.membership(point), direction)
    degree = measured.intersection_area(nominal) / m_area
    return Consistency(min(max(degree, 0.0), 1.0), direction)


def possibility(a: FuzzyInterval, b: FuzzyInterval) -> float:
    """Possibility ``Pi(a, b) = sup_x min(mu_a(x), mu_b(x))``.

    1 when the cores intersect, 0 when the supports are disjoint; for
    trapezoids the supremum is attained where the facing slopes cross.
    """
    if not a.overlaps(b):
        return 0.0
    if max(a.m1, b.m1) <= min(a.m2, b.m2) + _EPS:
        return 1.0
    # Cores disjoint: evaluate at the crossing of the two facing slopes.
    if a.m2 < b.m1:
        left, right = a, b
    else:
        left, right = b, a
    # Falling slope of `left`: mu = (left.m2 + left.beta - x)/left.beta
    # Rising slope of `right`: mu = (x - right.m1 + right.alpha)/right.alpha
    if left.beta <= _EPS:
        return right.membership(left.m2)
    if right.alpha <= _EPS:
        return left.membership(right.m1)
    x = (
        right.alpha * (left.m2 + left.beta) + left.beta * (right.m1 - right.alpha)
    ) / (left.beta + right.alpha)
    return max(0.0, min(left.membership(x), right.membership(x)))


def necessity(a: FuzzyInterval, b: FuzzyInterval) -> float:
    """Necessity ``N(a, b) = inf_x max(mu_b(x), 1 - mu_a(x))``.

    The dual of possibility: how *certain* it is that a value constrained
    by ``a`` lies in ``b``.
    """
    # inf over the support of a; outside it 1 - mu_a = 1.
    lo, hi = a.support
    worst = 1.0
    # The infimum of max(mu_b, 1-mu_a) over a piecewise-linear pair is
    # attained at a breakpoint or slope crossing; sample those.
    xs = {lo, hi, a.m1, a.m2, b.m1, b.m2, b.support[0], b.support[1]}
    grid = sorted(x for x in xs if lo <= x <= hi)
    for left, right in zip(grid, grid[1:]):
        mid = 0.5 * (left + right)
        for x in (left, mid, right):
            worst = min(worst, max(b.membership(x), 1.0 - a.membership(x)))
    if not grid:
        worst = min(worst, max(b.membership(lo), 1.0 - a.membership(lo)))
    return worst


def rank_key(value: FuzzyInterval) -> tuple:
    """Total-order key for ranking fuzzy quantities (e.g. expected entropies).

    Primary key is the centroid (centre-of-gravity defuzzification, the
    standard choice); ties break on the core midpoint then the support
    width so the ordering is deterministic.
    """
    return (value.centroid, 0.5 * (value.m1 + value.m2), value.width)


def _direction(measured: FuzzyInterval, nominal: FuzzyInterval) -> int:
    """-1/0/+1 location of the measurement relative to the nominal value."""
    if nominal.contains(measured):
        return 0
    m_lo, m_hi = measured.support
    n_lo, n_hi = nominal.support
    if m_hi < n_lo - _EPS:
        return -1
    if m_lo > n_hi + _EPS:
        return 1
    delta = measured.centroid - nominal.centroid
    if abs(delta) <= _EPS:
        return 0
    return -1 if delta < 0 else 1
