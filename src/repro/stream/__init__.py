"""Streaming diagnosis: continuous telemetry in, incremental re-diagnosis out.

FLAMES diagnoses from a fixed measurement set; this package turns it
into a long-lived monitor.  A *source* emits timestamped voltage
:class:`~repro.stream.sources.Reading` streams (replayed from a
transient trace or simulated live with a fault injected mid-stream), a
*detector* watches the fuzzy consistency degree (Dc) of each net and
decides — with hysteresis — when a re-diagnosis is warranted, a
*snapshot builder* assembles the current measurement set and diffs it
against the last diagnosed one, and a
:class:`~repro.stream.session.StreamingSession` re-diagnoses each dirty
snapshot on a warm incremental engine that resumes the measurement
absorption chain from per-step checkpoints instead of re-running cold.

The server exposes the whole loop as Server-Sent Events on
``GET /v1/stream`` and the CLI as ``repro watch``.
"""

from repro.stream.detector import DetectorConfig, DriftDetector
from repro.stream.incremental import IncrementalDiagnosisEngine
from repro.stream.session import StreamingSession, StreamUpdate
from repro.stream.snapshot import Snapshot, SnapshotBuilder, SnapshotDiff
from repro.stream.sources import LiveSimulatorSource, Reading, ReplaySource

__all__ = [
    "Reading",
    "ReplaySource",
    "LiveSimulatorSource",
    "DriftDetector",
    "DetectorConfig",
    "Snapshot",
    "SnapshotBuilder",
    "SnapshotDiff",
    "IncrementalDiagnosisEngine",
    "StreamingSession",
    "StreamUpdate",
]
