"""The incremental re-diagnosis engine: a prefix-checkpoint chain.

Retracting one measurement from a fuzzy fixpoint exactly is
intractable — a measurement's consequences thread through every
narrowing merge downstream — so the streaming plane avoids retraction
altogether.  The engine absorbs measurements **one at a time in a
session-stable order**, running the propagator to quiescence after each
assertion and checkpointing the complete solver state (propagator facts
via :meth:`~repro.core.propagation.FuzzyPropagator.checkpoint`, the
fuzzy ATMS and its assumption nodes via ``copy.deepcopy``, the
data-conflict list) after every step.  When the next snapshot arrives,
the longest prefix of the chain whose (point, value) pairs are
unchanged is *restored* instead of recomputed, and only the suffix —
the dirty points, which the order maintenance deliberately moves to the
back of the chain — is re-asserted.  One changed measurement out of N
costs one propagation step instead of N.

Semantics: the chain computes the fixpoint of an *arrival-ordered*
absorption sequence.  That is deterministic and observationally
identical to a cold engine replaying the same sequence in the same
order (the differential suite in ``tests/stream`` pins this on both
kernels), but it is **not** guaranteed to match a one-shot
:meth:`Flames.diagnose` of the final set, because the propagator's
fixpoint is order-sensitive (narrowing budgets and subsumption slack
make intermediate merge order observable).  Streaming consumers see a
consistent, reproducible trajectory; batch consumers keep the one-shot
semantics they always had.

Interruption contract: if a :class:`~repro.runtime.RunContext` expires
mid-suffix, the partial result is returned flagged ``interrupted`` and
**no checkpoint is appended** for the interrupted step — the chain is
truncated to the last completed prefix, so the next tick redoes the
unfinished work instead of building on a non-quiescent state.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atms import FuzzyATMS, minimal_diagnoses, suspicion_scores
from repro.atms.nodes import Node
from repro.circuit.measurements import Measurement
from repro.core.conflicts import RecognizedConflict
from repro.core.diagnosis import DiagnosisResult, Flames
from repro.core.propagation import PropagationResult, PropagatorState
from repro.fuzzy import consistency
from repro.kernel import FastFuzzyATMS
from repro.runtime.context import RunContext

__all__ = ["IncrementalDiagnosisEngine", "TickStats"]


@dataclass(frozen=True)
class _ChainStep:
    """One absorbed measurement and the solver state just after it.

    ``measurement`` is None only for the base step (the predictions-only
    fixpoint, before any observation is absorbed).
    """

    measurement: Optional[Measurement]
    propagator_state: PropagatorState
    atms_state: Tuple[FuzzyATMS, Dict[str, Node]]  # deepcopied (atms, nodes)
    data_conflicts: Tuple[RecognizedConflict, ...]


@dataclass(frozen=True)
class TickStats:
    """What one :meth:`IncrementalDiagnosisEngine.diagnose` call did."""

    reused_prefix: int  # chain steps restored instead of recomputed
    recomputed: int  # measurements (re-)asserted this tick
    total: int  # measurements in the diagnosed snapshot
    propagation_steps: int  # work-list pops across the suffix runs

    @property
    def incremental(self) -> bool:
        """True when at least one chain step was reused."""
        return self.reused_prefix > 0 and self.recomputed < self.total


class IncrementalDiagnosisEngine:
    """A warm FLAMES engine that re-diagnoses via chain checkpoints."""

    def __init__(self, engine: Flames) -> None:
        self.engine = engine
        self.config = engine.config
        self._propagator = engine.make_propagator()
        self._propagator.on_conflict = self._on_conflict
        # Working ATMS state (swapped wholesale on restore).
        self._atms: Optional[FuzzyATMS] = None
        self._nodes: Dict[str, Node] = {}
        self._data_conflicts: List[RecognizedConflict] = []
        # The absorption chain.
        self._base: Optional[_ChainStep] = None  # predictions-only fixpoint
        self._chain: List[_ChainStep] = []
        self._order: List[str] = []  # session-stable absorption order
        self.last_stats: Optional[TickStats] = None

    # ------------------------------------------------------------------
    # ATMS plumbing (mirrors DiagnosisPipeline's seed stage)
    # ------------------------------------------------------------------
    def _fresh_atms(self) -> None:
        atms_cls = FastFuzzyATMS if self.config.kernel == "fast" else FuzzyATMS
        self._atms = atms_cls(
            t_norm=self.config.t_norm, hard_threshold=self.config.hard_threshold
        )
        self._nodes = {}
        self._data_conflicts = []

    def _node_for(self, name: str) -> Node:
        if name not in self._nodes:
            assert self._atms is not None
            self._nodes[name] = self._atms.create_assumption(f"ok({name})", name)
        return self._nodes[name]

    def _on_conflict(self, conflict: RecognizedConflict) -> None:
        if conflict.degree < self.config.conflict_threshold:
            return
        if not conflict.environment:
            self._data_conflicts.append(conflict)
            return
        assert self._atms is not None
        self._atms.declare_soft_nogood(
            f"{conflict.variable}",
            [self._node_for(n) for n in sorted(conflict.environment)],
            conflict.degree,
        )

    # ------------------------------------------------------------------
    # Chain bookkeeping
    # ------------------------------------------------------------------
    def _snapshot_step(self, measurement: Measurement) -> _ChainStep:
        return _ChainStep(
            measurement=measurement,
            propagator_state=self._propagator.checkpoint(),
            atms_state=copy.deepcopy((self._atms, self._nodes)),
            data_conflicts=tuple(self._data_conflicts),
        )

    def _restore_step(self, step: _ChainStep) -> None:
        self._propagator.restore(step.propagator_state)
        # Deepcopy again: the stored state must stay pristine while the
        # working copy keeps absorbing nogoods.
        self._atms, self._nodes = copy.deepcopy(step.atms_state)
        self._data_conflicts = list(step.data_conflicts)

    def _build_base(self, ctx: RunContext) -> bool:
        """Predictions-only fixpoint; False when interrupted."""
        self.engine._ensure_nominal()
        nominal = self.engine._nominal
        assert nominal is not None
        self._fresh_atms()
        self._propagator.reset()
        for name, prediction in nominal.items():
            if name in self.engine.network.variables:
                self._propagator.set_value(
                    name, prediction.value, prediction.support, source="prediction"
                )
        outcome = self._propagator.run(ctx=ctx)
        if outcome.interrupted:
            return False
        self._base = _ChainStep(
            measurement=None,
            propagator_state=self._propagator.checkpoint(),
            atms_state=copy.deepcopy((self._atms, self._nodes)),
            data_conflicts=tuple(self._data_conflicts),
        )
        return True

    def _maintain_order(self, measurements: Sequence[Measurement]) -> List[Measurement]:
        """Session-stable absorption order; dirty points go to the back.

        Points keep their chain position while their value is unchanged;
        changed and new points move to the back so the surviving prefix
        is as long as possible.  Removed points drop out (which
        invalidates the chain from their old position on — exactly
        right, since their assertion must be undone).
        """
        by_point: Dict[str, Measurement] = {}
        for m in measurements:
            by_point[m.point] = m
        if len(by_point) != len(measurements):
            raise ValueError("duplicate measurement points in one snapshot")

        absorbed = {
            step.measurement.point: step.measurement for step in self._chain
        }
        stable: List[Measurement] = []
        dirty: List[Measurement] = []
        # Previously absorbed points first, in chain order.
        for point in self._order:
            if point not in by_point:
                continue
            m = by_point.pop(point)
            if point in absorbed and absorbed[point].value == m.value:
                stable.append(m)
            else:
                dirty.append(m)
        # Brand-new points at the very back, in arrival order.
        dirty.extend(by_point.values())
        ordered = stable + dirty
        self._order = [m.point for m in ordered]
        return ordered

    def _valid_prefix(self, ordered: Sequence[Measurement]) -> int:
        """How many leading chain steps match the new sequence exactly."""
        k = 0
        for step, m in zip(self._chain, ordered):
            if step.measurement.point != m.point or step.measurement.value != m.value:
                break
            k += 1
        return k

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def diagnose(
        self,
        measurements: Sequence[Measurement],
        ctx: Optional[RunContext] = None,
    ) -> DiagnosisResult:
        """Re-diagnose a snapshot, reusing the longest valid chain prefix."""
        if ctx is None:
            ctx = RunContext.background()

        engine = self.engine
        with ctx.span(
            "stream.tick", circuit=engine.circuit.name, kernel=self.config.kernel
        ):
            for m in measurements:
                if m.point not in engine.network.variables:
                    raise KeyError(f"no variable {m.point!r} in the model")

            with ctx.span("order"):
                ordered = self._maintain_order(measurements)

            interrupted = False
            total_steps = 0
            quiescent = True

            with ctx.span("restore") as span:
                if self._base is None:
                    if not self._build_base(ctx):
                        # Could not even establish the predictions-only
                        # fixpoint inside the budget: report an empty,
                        # interrupted result and leave the chain unbuilt.
                        self._base = None
                        return self._finish(
                            measurements,
                            PropagationResult(
                                steps=0, quiescent=False, interrupted=True
                            ),
                            ctx,
                            TickStats(0, 0, len(measurements), 0),
                        )
                    self._chain = []
                prefix = self._valid_prefix(ordered)
                self._chain = self._chain[:prefix]
                self._restore_step(self._chain[-1] if prefix else self._base)
                if span is not None:
                    span.meta["prefix"] = prefix
                    span.meta["suffix"] = len(ordered) - prefix

            with ctx.span("absorb") as span:
                for m in ordered[prefix:]:
                    self._propagator.set_value(m.point, m.value)
                    outcome = self._propagator.run(ctx=ctx)
                    total_steps += outcome.steps
                    if outcome.interrupted:
                        # Do not checkpoint a non-quiescent state; the
                        # next tick redoes this step from the prefix.
                        interrupted = True
                        quiescent = False
                        break
                    self._chain.append(self._snapshot_step(m))
                if span is not None:
                    span.meta["steps"] = total_steps

            stats = TickStats(
                reused_prefix=prefix,
                recomputed=len(ordered) - prefix,
                total=len(ordered),
                propagation_steps=total_steps,
            )
            self.last_stats = stats
            outcome_all = PropagationResult(
                steps=total_steps, quiescent=quiescent, interrupted=interrupted
            )
            return self._finish(ordered, outcome_all, ctx, stats)

    # ------------------------------------------------------------------
    def _finish(
        self,
        measurements: Sequence[Measurement],
        outcome: PropagationResult,
        ctx: RunContext,
        stats: TickStats,
    ) -> DiagnosisResult:
        """The pipeline's classify/nogoods/candidates/score tail."""
        engine = self.engine
        config = self.config
        assert self._atms is not None

        with ctx.span("classify"):
            predictions = engine.predictions()
            support = engine.prediction_support()
            consistencies = {
                m.point: consistency(m.value, predictions[m.point])
                for m in measurements
                if m.point in predictions
            }
        with ctx.span("nogoods"):
            nogoods = self._atms.weighted_nogoods(config.conflict_threshold)
        with ctx.span("candidates"):
            diagnoses = minimal_diagnoses(
                nogoods,
                threshold=config.conflict_threshold,
                max_size=config.max_candidate_size,
            )
        with ctx.span("score"):
            suspicions = {a.datum: s for a, s in suspicion_scores(nogoods).items()}

        ctx.should_stop()
        return DiagnosisResult(
            measurements=list(measurements),
            predictions=predictions,
            prediction_support=support,
            consistencies=consistencies,
            nogoods=nogoods,
            diagnoses=diagnoses,
            suspicions=suspicions,
            conflicts=self._propagator.conflicts + list(self._data_conflicts),
            propagation=outcome,
            interrupted=ctx.interrupted or outcome.interrupted,
            trace=ctx.trace() if ctx.tracing else None,
        )

    # ------------------------------------------------------------------
    @property
    def order(self) -> List[str]:
        """The current absorption order (for cold-baseline replays)."""
        return list(self._order)

    @property
    def chain_length(self) -> int:
        return len(self._chain)
