"""Server-Sent Events framing (RFC-less but interoperable).

The ``GET /v1/stream`` endpoint speaks the W3C EventSource wire format:
``id:`` carries the per-stream monotonic sequence number, ``event:``
the event type, ``data:`` one JSON object.  The helpers here are shared
by the server (formatting) and the tests/CLI (parsing) so both ends
agree on one framing, and they are pure functions — no I/O.

Event types:

``update``     one :class:`~repro.stream.session.StreamUpdate` dict —
               the ranking shifted (or the baseline/drain tick fired).
``heartbeat``  keep-alive with the current stream clock; sent when no
               update has been emitted for ``heartbeat_every`` events'
               worth of readings so proxies don't reap the connection.
``end``        final event; ``data.reason`` is ``"complete"`` (source
               exhausted), ``"drain"`` (server shutting down) or
               ``"limit"`` (event cap reached).

Every event carries an ``id:`` line; consumers can therefore assert
gapless, strictly monotonic sequence numbers — the stream smoke test
does exactly that.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

__all__ = ["format_event", "parse_events", "split_complete", "SSEEvent"]

#: (seq, event type, decoded data)
SSEEvent = Tuple[int, str, Dict]


def format_event(seq: int, event: str, data: Dict) -> bytes:
    """One wire-format SSE frame (UTF-8, terminated by a blank line)."""
    if seq < 0:
        raise ValueError("sequence numbers start at 0")
    if "\n" in event or ":" in event:
        raise ValueError(f"malformed event type {event!r}")
    payload = json.dumps(data, separators=(",", ":"), sort_keys=True)
    return f"id: {seq}\nevent: {event}\ndata: {payload}\n\n".encode("utf-8")


def parse_events(raw: bytes) -> List[SSEEvent]:
    """Decode a byte stream of frames back into (seq, event, data) triples.

    Tolerates a trailing partial frame (it is ignored), per SSE's
    incremental nature; use :func:`split_complete` when you need to
    keep the remainder for the next read.
    """
    events, _rest = split_complete(raw)
    return events


def split_complete(raw: bytes) -> Tuple[List[SSEEvent], bytes]:
    """Parse all complete frames; return them plus the unparsed tail."""
    events: List[SSEEvent] = []
    while True:
        boundary = raw.find(b"\n\n")
        if boundary < 0:
            return events, raw
        frame, raw = raw[:boundary], raw[boundary + 2 :]
        parsed = _parse_frame(frame.decode("utf-8"))
        if parsed is not None:
            events.append(parsed)


def _parse_frame(frame: str) -> Optional[SSEEvent]:
    seq: Optional[int] = None
    event = "message"
    data_lines: List[str] = []
    for line in frame.split("\n"):
        if not line or line.startswith(":"):  # comment / keep-alive line
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "id":
            seq = int(value)
        elif field == "event":
            event = value
        elif field == "data":
            data_lines.append(value)
    if seq is None and not data_lines:
        return None
    data = json.loads("\n".join(data_lines)) if data_lines else {}
    return (-1 if seq is None else seq, event, data)
