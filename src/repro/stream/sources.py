"""Reading sources: where the telemetry stream comes from.

A :class:`Reading` is one probe sample — net, time, crisp volts.  The
two sources both ride on the dynamic-mode machinery of
``repro.circuit.transient``:

* :class:`ReplaySource` walks an already-computed
  :class:`~repro.circuit.transient.TransientResult`, optionally adding
  seeded Gaussian instrument noise — deterministic, so tests and the
  benchmark replay byte-identical streams.
* :class:`LiveSimulatorSource` runs the backward-Euler solver itself
  and swaps in a faulty clone of the circuit mid-stream, carrying the
  capacitor state across the swap — the "unit degrades while we watch"
  workload the monitoring plane exists for.

Sources are plain iterables of readings in non-decreasing time order;
the streaming session does not care which kind it was handed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.circuit.components import Capacitor
from repro.circuit.faults import Fault, apply_fault
from repro.circuit.measurements import Measurement
from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientResult, TransientSolver, Waveform
from repro.fuzzy import FuzzyInterval

__all__ = ["Reading", "ReplaySource", "LiveSimulatorSource"]


@dataclass(frozen=True)
class Reading:
    """One probe sample from the unit under observation."""

    t: float
    net: str
    volts: float

    @property
    def point(self) -> str:
        """The model variable this reading observes."""
        return f"V({self.net})"

    def to_measurement(self, imprecision: float = 0.01) -> Measurement:
        """Wrap the sample with the instrument's fuzziness."""
        return Measurement(self.point, FuzzyInterval.number(self.volts, imprecision))


class ReplaySource:
    """Replay a transient trace as a reading stream.

    Each time sample yields one reading per requested net, in the order
    the nets were given.  ``noise`` adds zero-mean Gaussian jitter from
    a seeded RNG, so two sources built with the same arguments emit the
    same stream — determinism the differential tests lean on.

    Args:
        trace: a finished transient simulation.
        nets: which nets to report (must exist in the trace's circuit).
        noise: instrument noise standard deviation in volts.
        seed: RNG seed for the noise stream.
        stride: report every ``stride``-th time sample (thins dense
            traces without changing their shape).
    """

    def __init__(
        self,
        trace: TransientResult,
        nets: Sequence[str],
        noise: float = 0.0,
        seed: int = 0,
        stride: int = 1,
    ) -> None:
        if not nets:
            raise ValueError("need at least one net to watch")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.trace = trace
        self.nets = list(nets)
        self.noise = noise
        self.seed = seed
        self.stride = stride

    def __iter__(self) -> Iterator[Reading]:
        rng = random.Random(self.seed)
        for i in range(0, len(self.trace), self.stride):
            t = self.trace.times[i]
            op = self.trace.points[i]
            for net in self.nets:
                volts = op.voltage(net)
                if self.noise:
                    volts += rng.gauss(0.0, self.noise)
                yield Reading(t, net, volts)

    def __len__(self) -> int:
        return len(range(0, len(self.trace), self.stride)) * len(self.nets)


class LiveSimulatorSource:
    """Simulate the unit live and break it partway through.

    Runs the golden circuit up to ``fault_at``, applies ``fault`` to a
    clone, hands the clone the capacitor voltages the golden run ended
    with, and keeps going — the stream sees a healthy unit that starts
    drifting mid-observation, which is exactly the event the drift
    detector has to catch.

    With ``fault=None`` this is just a live healthy run (useful for
    flap-resistance tests: nothing should ever fire).
    """

    def __init__(
        self,
        circuit: Circuit,
        nets: Sequence[str],
        duration: float,
        dt: float = 1e-4,
        fault: Optional[Fault] = None,
        fault_at: float = 0.0,
        waveforms: Optional[Dict[str, Waveform]] = None,
        noise: float = 0.0,
        seed: int = 0,
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        if fault is not None and not 0.0 <= fault_at < duration:
            raise ValueError("fault_at must fall inside [0, duration)")
        if not nets:
            raise ValueError("need at least one net to watch")
        self.circuit = circuit
        self.nets = list(nets)
        self.duration = duration
        self.dt = dt
        self.fault = fault
        self.fault_at = fault_at
        self.waveforms = dict(waveforms or {})
        self.noise = noise
        self.seed = seed

    def _segments(self) -> List[TransientResult]:
        """The healthy prefix and (when faulted) the broken suffix."""
        if self.fault is None:
            solver = TransientSolver(self.circuit, self.waveforms, dt=self.dt)
            return [solver.run(self.duration)]
        segments: List[TransientResult] = []
        cap_state: "str | Dict[str, float]" = "dc"
        if self.fault_at > 0:
            healthy = TransientSolver(self.circuit, self.waveforms, dt=self.dt)
            prefix = healthy.run(self.fault_at)
            segments.append(prefix)
            cap_state = self._cap_voltages(prefix)
        broken_circuit = apply_fault(self.circuit, self.fault)
        broken = TransientSolver(
            broken_circuit, self.waveforms, dt=self.dt, initial=cap_state
        )
        segments.append(broken.run(self.duration - self.fault_at))
        return segments

    def _cap_voltages(self, trace: TransientResult) -> Dict[str, float]:
        op = trace.points[-1]
        return {
            c.name: op.voltage(c.net("a").name) - op.voltage(c.net("b").name)
            for c in self.circuit.components
            if isinstance(c, Capacitor)
        }

    def __iter__(self) -> Iterator[Reading]:
        rng = random.Random(self.seed)
        offset = 0.0
        for seg_index, segment in enumerate(self._segments()):
            # The first sample of a continuation segment duplicates the
            # time of the previous segment's last sample; skip it so the
            # stream stays strictly ordered per net.
            start = 1 if seg_index > 0 else 0
            for i in range(start, len(segment)):
                t = offset + segment.times[i]
                for net in self.nets:
                    volts = segment.points[i].voltage(net)
                    if self.noise:
                        volts += rng.gauss(0.0, self.noise)
                    yield Reading(t, net, volts)
            offset += segment.times[-1]
