"""Snapshots: the measurement set the stream believes *right now*.

The session diagnoses snapshots, not readings.  A
:class:`SnapshotBuilder` folds the latest reading per net into a
current-state map; :meth:`SnapshotBuilder.build` freezes it into a
:class:`Snapshot`, and :func:`Snapshot.diff` against the previously
diagnosed snapshot yields exactly which points changed — the dirty set
the incremental engine uses to decide how much of its checkpoint chain
survives.

Readings are noisy, so "changed" is tolerance-gated: a point is dirty
only when its crisp reading moved by more than ``epsilon`` volts since
it was last diagnosed.  Without the gate, every nanovolt of instrument
noise would invalidate the chain suffix and the incremental path would
degenerate to cold re-runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.circuit.measurements import Measurement
from repro.stream.sources import Reading

__all__ = ["Snapshot", "SnapshotBuilder", "SnapshotDiff"]


@dataclass(frozen=True)
class SnapshotDiff:
    """Which measurement points moved between two snapshots."""

    changed: FrozenSet[str]  # present in both, value moved beyond epsilon
    added: FrozenSet[str]  # new points
    removed: FrozenSet[str]  # points that vanished

    @property
    def dirty(self) -> FrozenSet[str]:
        """Every point whose assertion must be redone."""
        return self.changed | self.added

    def __bool__(self) -> bool:
        return bool(self.changed or self.added or self.removed)


@dataclass(frozen=True)
class Snapshot:
    """A frozen measurement set with its assembly time."""

    t: float
    #: point name -> (crisp reading, fuzzy measurement)
    readings: "Tuple[Tuple[str, float], ...]"
    measurements: Tuple[Measurement, ...]

    @property
    def points(self) -> FrozenSet[str]:
        return frozenset(p for p, _ in self.readings)

    def reading(self, point: str) -> Optional[float]:
        for p, volts in self.readings:
            if p == point:
                return volts
        return None

    def diff(self, newer: "Snapshot", epsilon: float = 0.0) -> SnapshotDiff:
        """What changed from this snapshot to ``newer``."""
        mine = dict(self.readings)
        theirs = dict(newer.readings)
        changed = frozenset(
            p
            for p, volts in theirs.items()
            if p in mine and abs(volts - mine[p]) > epsilon
        )
        return SnapshotDiff(
            changed=changed,
            added=frozenset(theirs) - frozenset(mine),
            removed=frozenset(mine) - frozenset(theirs),
        )


@dataclass
class SnapshotBuilder:
    """Accumulate readings; emit frozen snapshots on demand.

    Attributes:
        imprecision: instrument fuzziness wrapped around each crisp
            reading when the snapshot's measurements are built.
        epsilon: the dirty gate — see the module docstring.
    """

    imprecision: float = 0.01
    epsilon: float = 0.0
    _latest: Dict[str, Reading] = field(default_factory=dict)
    _clock: float = 0.0

    def ingest(self, reading: Reading) -> None:
        self._latest[reading.point] = reading
        self._clock = max(self._clock, reading.t)

    @property
    def points(self) -> List[str]:
        return sorted(self._latest)

    def build(self) -> Snapshot:
        """Freeze the current state (points in sorted order)."""
        points = self.points
        return Snapshot(
            t=self._clock,
            readings=tuple((p, self._latest[p].volts) for p in points),
            measurements=tuple(
                self._latest[p].to_measurement(self.imprecision) for p in points
            ),
        )

    def diff_against(self, last: Optional[Snapshot]) -> SnapshotDiff:
        """Diff the *current* state against the last diagnosed snapshot."""
        current = self.build()
        if last is None:
            return SnapshotDiff(
                changed=frozenset(),
                added=current.points,
                removed=frozenset(),
            )
        return last.diff(current, epsilon=self.epsilon)
