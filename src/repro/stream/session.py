"""The streaming session: readings in, ranking updates out.

``StreamingSession.run()`` is a generator — the natural shape for both
the CLI (render each update as it arrives) and the SSE endpoint (frame
each update as an event).  Per reading it:

1. optionally drops the sample (the ``stream.reading_drop`` chaos
   point — lossy telemetry links are a fact of monitoring life);
2. folds it into the snapshot builder and scores it against the
   nominal prediction (the paper's Dc), feeding the drift detector;
3. when the detector fires, builds a snapshot, diffs it against the
   last diagnosed one, and — if anything is actually dirty — runs one
   incremental re-diagnosis tick under a fresh deadline-bounded
   :class:`~repro.runtime.RunContext`, yielding a
   :class:`StreamUpdate` with the new ranking.

Telemetry: counters ``stream_readings_ingested``,
``stream_readings_dropped``, ``stream_rediagnoses``,
``stream_rediagnoses_suppressed``, ``stream_ticks_incremental``,
``stream_ticks_cold``; observation ``stream_tick_ms``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Iterator, Optional, Tuple

from repro.core.diagnosis import Flames
from repro.fuzzy import consistency
from repro.resilience import faults
from repro.runtime.context import RunContext
from repro.service.telemetry import Telemetry
from repro.stream.detector import DriftDetector
from repro.stream.incremental import IncrementalDiagnosisEngine
from repro.stream.snapshot import Snapshot, SnapshotBuilder
from repro.stream.sources import Reading

__all__ = ["StreamingSession", "StreamUpdate"]


@dataclass(frozen=True)
class StreamUpdate:
    """One re-diagnosis event emitted by a streaming session."""

    seq: int  # monotonic per session, starts at 0
    t: float  # stream time of the diagnosed snapshot
    ranking: Tuple[Tuple[str, float], ...]  # (component, suspicion), best first
    candidates: Tuple[Tuple[str, ...], ...]  # minimal diagnosis sets, best first
    dirty: Tuple[str, ...]  # points whose change triggered the tick
    drifted: Tuple[str, ...]  # nets currently above the drift threshold
    incremental: bool  # chain prefix reused (False = cold tick)
    interrupted: bool  # tick hit its deadline; ranking is partial
    consistent: bool  # no nogood above threshold — unit looks healthy
    tick_ms: float  # wall-clock cost of the re-diagnosis
    readings_seen: int  # total ingested when the tick fired

    def to_dict(self) -> dict:
        """JSON-ready shape — also the SSE ``data:`` payload."""
        return {
            "seq": self.seq,
            "t": round(self.t, 9),
            "ranking": [[c, round(s, 6)] for c, s in self.ranking],
            "candidates": [list(c) for c in self.candidates],
            "dirty": list(self.dirty),
            "drifted": list(self.drifted),
            "incremental": self.incremental,
            "interrupted": self.interrupted,
            "consistent": self.consistent,
            "tick_ms": round(self.tick_ms, 3),
            "readings_seen": self.readings_seen,
        }


@dataclass
class StreamingSession:
    """Wire a source, a detector and a warm engine into one loop.

    Args:
        engine: the FLAMES engine for the *golden* circuit (the model
            database; the stream observes the possibly-faulty unit).
        source: any iterable of readings in non-decreasing time order.
        detector: drift detector (fresh default if omitted).
        builder: snapshot builder (fresh default if omitted).
        telemetry: counters/gauges sink (private one if omitted).
        tick_deadline: per-re-diagnosis budget in seconds (None =
            unbounded).
        top: how many ranked components each update carries.
        always_diagnose_first: diagnose the first complete snapshot
            even if nothing has drifted — gives consumers a baseline
            "all healthy" event to render before anything breaks.
    """

    engine: Flames
    source: Iterable[Reading]
    detector: DriftDetector = field(default_factory=DriftDetector)
    builder: SnapshotBuilder = field(default_factory=SnapshotBuilder)
    telemetry: Telemetry = field(default_factory=Telemetry)
    tick_deadline: Optional[float] = None
    top: int = 5
    always_diagnose_first: bool = True

    def __post_init__(self) -> None:
        self._incremental = IncrementalDiagnosisEngine(self.engine)
        self._last_snapshot: Optional[Snapshot] = None
        self._seq = 0
        self._readings_seen = 0
        self._predictions = self.engine.predictions()

    # ------------------------------------------------------------------
    def run(self) -> Iterator[StreamUpdate]:
        """Consume the source; yield an update per re-diagnosis."""
        baseline_pending = self.always_diagnose_first
        first_t: Optional[float] = None
        for reading in self.source:
            # Keyed per sample so a fractional drop rate thins the stream
            # instead of deleting one net wholesale.
            if faults.maybe_fire("stream.reading_drop", f"{reading.net}@{reading.t:.9f}"):
                self.telemetry.incr("stream_readings_dropped")
                continue
            self._readings_seen += 1
            self.telemetry.incr("stream_readings_ingested")
            self.builder.ingest(reading)
            if first_t is None:
                first_t = reading.t

            triggered = self._score(reading)
            force = False
            if baseline_pending and reading.t > first_t:
                # The first time frame is complete (sources emit every
                # watched net per sample): emit the baseline ranking
                # even though nothing has drifted yet.
                force, baseline_pending = True, False
            if not (triggered or force):
                continue
            update = self._tick(force=force)
            if update is not None:
                yield update

        # Source exhausted: if undiagnosed changes remain (the final
        # samples never crossed the drift threshold), one last tick
        # drains the stream so the consumer's final ranking reflects
        # every reading it was sent.
        final = self._tick(force=True)
        if final is not None:
            yield final

    # ------------------------------------------------------------------
    def _score(self, reading: Reading) -> bool:
        """Update the drift detector with this reading's Dc."""
        nominal = self._predictions.get(reading.point)
        if nominal is None:
            return False
        measurement = reading.to_measurement(self.builder.imprecision)
        dc = consistency(measurement.value, nominal).degree
        return self.detector.observe(reading.net, dc)

    def _tick(self, force: bool = False) -> Optional[StreamUpdate]:
        """One re-diagnosis attempt; None when suppressed as a no-op.

        ``force`` bypasses the detector (baseline and drain ticks), not
        the dirty gate: a tick with nothing dirty is always a no-op.
        """
        diff = self.builder.diff_against(self._last_snapshot)
        self._sync_detector_counters()
        if not diff.dirty:
            if not force:
                self.telemetry.incr("stream_rediagnoses_suppressed")
            return None

        snapshot = self.builder.build()
        ctx = (
            RunContext.with_timeout(self.tick_deadline)
            if self.tick_deadline is not None
            else RunContext.background()
        )
        started = perf_counter()
        result = self._incremental.diagnose(snapshot.measurements, ctx=ctx)
        elapsed_ms = (perf_counter() - started) * 1e3
        self._last_snapshot = snapshot

        stats = self._incremental.last_stats
        incremental = bool(stats and stats.incremental)
        self.telemetry.incr("stream_rediagnoses")
        self.telemetry.incr(
            "stream_ticks_incremental" if incremental else "stream_ticks_cold"
        )
        self.telemetry.observe("stream_tick_ms", elapsed_ms)
        self._sync_detector_counters()

        ranking = result.ranked_components()[: self.top]
        update = StreamUpdate(
            seq=self._seq,
            t=snapshot.t,
            ranking=tuple(ranking),
            candidates=tuple(d.components for d in result.diagnoses[: self.top]),
            dirty=tuple(sorted(diff.dirty)),
            drifted=tuple(self.detector.drifted_nets()),
            incremental=incremental,
            interrupted=result.interrupted,
            consistent=result.is_consistent,
            tick_ms=elapsed_ms,
            readings_seen=self._readings_seen,
        )
        self._seq += 1
        return update

    def _sync_detector_counters(self) -> None:
        """Mirror the detector's cumulative counters into telemetry gauges."""
        self.telemetry.gauge("stream_detector_fired", float(self.detector.fired))
        self.telemetry.gauge(
            "stream_detector_suppressed", float(self.detector.suppressed)
        )
        self.telemetry.gauge(
            "stream_detector_misfires", float(self.detector.misfires)
        )
