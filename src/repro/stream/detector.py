"""Drift detection over fuzzy consistency trajectories.

The streaming session does not re-diagnose on every sample — that would
be both wasteful and noisy.  Instead every reading is scored against
the model's nominal prediction with the paper's consistency degree Dc,
and a per-net EWMA of the *discrepancy* ``1 - Dc`` tracks how far the
net has drifted from what the model database expects.  A re-diagnosis
fires when any net's EWMA crosses ``threshold``; the net then disarms
until its EWMA falls back below ``threshold - hysteresis``, so a net
hovering at the boundary triggers once instead of flapping on every
sample.

The ``stream.detector_misfire`` fault point (see
``repro.resilience.faults``) forces a spurious trigger: chaos runs use
it to prove a misfiring detector only wastes a tick — the re-diagnosis
it provokes is still correct, just unnecessary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.resilience import faults

__all__ = ["DetectorConfig", "DriftDetector", "NetState"]


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning knobs for :class:`DriftDetector`.

    Attributes:
        threshold: EWMA discrepancy level that arms a re-diagnosis
            (``1 - Dc``; 0 = perfectly consistent, 1 = fully broken).
        hysteresis: how far below ``threshold`` the EWMA must fall
            before the net may trigger again.
        alpha: EWMA smoothing factor in (0, 1]; 1 means "no smoothing,
            react to the raw sample".
    """

    threshold: float = 0.5
    hysteresis: float = 0.2
    alpha: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if not 0.0 <= self.hysteresis < self.threshold:
            raise ValueError("hysteresis must be in [0, threshold)")


@dataclass
class NetState:
    """Per-net detector state."""

    ewma: float = 0.0
    primed: bool = False  # seen at least one sample
    armed: bool = True  # may trigger on the next crossing
    samples: int = 0  # observations folded in so far


@dataclass
class DriftDetector:
    """EWMA drift detector over per-net Dc trajectories."""

    config: DetectorConfig = field(default_factory=DetectorConfig)
    #: re-diagnoses requested (threshold crossings + misfires).
    fired: int = 0
    #: crossings swallowed by hysteresis (net still above threshold
    #: but already triggered and not yet re-armed).
    suppressed: int = 0
    #: spurious triggers injected by the chaos plane.
    misfires: int = 0

    def __post_init__(self) -> None:
        self._nets: Dict[str, NetState] = {}

    def observe(self, net: str, dc: float) -> bool:
        """Feed one consistency sample; True when a re-diagnosis is due.

        ``dc`` is the consistency degree of the latest reading against
        the nominal prediction, clamped into [0, 1].
        """
        discrepancy = 1.0 - min(max(dc, 0.0), 1.0)
        state = self._nets.setdefault(net, NetState())
        state.samples += 1
        if not state.primed:
            state.ewma = discrepancy
            state.primed = True
        else:
            alpha = self.config.alpha
            state.ewma = alpha * discrepancy + (1.0 - alpha) * state.ewma

        if faults.maybe_fire("stream.detector_misfire", f"{net}#{state.samples}"):
            self.misfires += 1
            self.fired += 1
            return True

        if state.ewma >= self.config.threshold:
            if state.armed:
                state.armed = False
                self.fired += 1
                return True
            self.suppressed += 1
            return False
        if state.ewma <= self.config.threshold - self.config.hysteresis:
            state.armed = True
        return False

    def level(self, net: str) -> float:
        """Current EWMA discrepancy for ``net`` (0.0 if never seen)."""
        state = self._nets.get(net)
        return state.ewma if state else 0.0

    def drifted_nets(self) -> List[str]:
        """Nets currently at or above the trigger threshold."""
        return sorted(
            net
            for net, state in self._nets.items()
            if state.ewma >= self.config.threshold
        )
