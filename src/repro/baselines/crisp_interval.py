"""Crisp interval arithmetic — the DIANA representation (paper §4.2).

"Crisp intervals contain all sorts of inaccuracy without any
distinction, which can cause an explosion in the value propagation
through the circuit" — and, worse, they *mask* slight faults: a value
just inside the accumulated bounds is accepted outright, where the fuzzy
representation still reports a low membership.  This module provides the
standalone crisp interval used by the figure-2 comparison and the crisp
baseline diagnoser.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.fuzzy import FuzzyInterval

__all__ = ["Interval"]


@dataclass(frozen=True)
class Interval:
    """A closed crisp interval ``[lo, hi]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval bounds must not be NaN")
        if self.lo > self.hi:
            raise ValueError(f"inverted interval [{self.lo}, {self.hi}]")

    # ------------------------------------------------------------------
    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(value, value)

    @classmethod
    def around(cls, value: float, tolerance: float) -> "Interval":
        spread = abs(value) * tolerance
        return cls(value - spread, value + spread)

    @classmethod
    def from_fuzzy(cls, fz: FuzzyInterval) -> "Interval":
        """The support of a fuzzy interval — what crispification keeps."""
        lo, hi = fz.support
        return cls(lo, hi)

    def to_fuzzy(self) -> FuzzyInterval:
        return FuzzyInterval.crisp_interval(self.lo, self.hi)

    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lo + self.hi)

    def contains(self, x: "Interval | float") -> bool:
        if isinstance(x, Interval):
            return self.lo <= x.lo and x.hi <= self.hi
        return self.lo <= x <= self.hi

    def intersects(self, other: "Interval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        if not self.intersects(other):
            return None
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Interval | float") -> "Interval":
        other = _coerce(other)
        return Interval(self.lo + other.lo, self.hi + other.hi)

    __radd__ = __add__

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other: "Interval | float") -> "Interval":
        other = _coerce(other)
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __rsub__(self, other: "Interval | float") -> "Interval":
        return _coerce(other) - self

    def __mul__(self, other: "Interval | float") -> "Interval":
        other = _coerce(other)
        products = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return Interval(min(products), max(products))

    __rmul__ = __mul__

    def __truediv__(self, other: "Interval | float") -> "Interval":
        other = _coerce(other)
        if other.lo <= 0.0 <= other.hi:
            raise ZeroDivisionError("crisp division by an interval containing zero")
        quotients = (
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        )
        return Interval(min(quotients), max(quotients))

    def __rtruediv__(self, other: "Interval | float") -> "Interval":
        return _coerce(other) / self

    def as_tuple(self) -> Tuple[float, float]:
        return (self.lo, self.hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo:g},{self.hi:g}]"


def _coerce(value: "Interval | float | int") -> Interval:
    if isinstance(value, Interval):
        return value
    if isinstance(value, (int, float)):
        return Interval(float(value), float(value))
    raise TypeError(f"cannot interpret {value!r} as a crisp interval")
