"""Baselines the paper compares against.

* :mod:`repro.baselines.crisp_interval` — plain crisp interval
  arithmetic, the representation DIANA propagates (paper §4.2 argues it
  masks slight faults; figure 2 is the demonstration).
* :mod:`repro.baselines.crisp_propagation` — a DIANA-style diagnoser:
  the same conflict-recognition engine run over crisp intervals, where a
  conflict exists only when intervals are disjoint (no degrees, no
  partial conflicts, unweighted candidates).
* :mod:`repro.baselines.probabilistic` — GDE/FIS-style probabilistic
  next-test selection with crisp priors and Shannon entropy, plus a
  random prober, for the strategy benchmarks.
"""

from repro.baselines.crisp_interval import Interval
from repro.baselines.crisp_propagation import CrispDiagnoser, crispify
from repro.baselines.fault_dictionary import FaultDictionary, DictionaryMatch
from repro.baselines.probabilistic import (
    GdeTestPlanner,
    RandomProbePlanner,
    shannon_entropy,
)

__all__ = [
    "Interval",
    "CrispDiagnoser",
    "crispify",
    "FaultDictionary",
    "DictionaryMatch",
    "GdeTestPlanner",
    "RandomProbePlanner",
    "shannon_entropy",
]
