"""The classic fault-dictionary baseline (paper §7's foil).

"As regards to fault modes, our intention is not to define a fault
dictionary" — because dictionaries only recognise the faults someone
simulated in advance.  This module implements that pre-FLAMES approach
faithfully so the comparison can be measured: every (component, mode)
hypothesis is simulated once, its probe signature stored, and diagnosis
is nearest-signature lookup.  Its characteristic failure — an *unlisted*
fault (a drift magnitude nobody tabulated, a double fault) matches the
wrong entry with full confidence — is what the model-based engine's
graceful degradation is measured against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.faults import Fault, apply_fault
from repro.circuit.netlist import Circuit
from repro.circuit.simulate import DCSolver, OperatingPoint, SimulationError

__all__ = ["DictionaryEntry", "DictionaryMatch", "FaultDictionary", "dictionary_faults"]


def dictionary_faults(circuit: Circuit) -> List[Tuple[str, str, Fault]]:
    """The tabulated hypotheses: every component's common fault modes.

    One representative defect per (component, mode) — what a dictionary
    builder of the era would simulate.  Reuses the knowledge base's mode
    catalogue so both approaches start from the same fault universe.
    """
    from repro.core.knowledge import common_fault_modes

    catalogue = common_fault_modes()
    tabulated: List[Tuple[str, str, Fault]] = []
    for comp in circuit.components:
        for mode in catalogue.get(comp.kind, []):
            representatives = mode.faults(comp)
            if representatives:
                tabulated.append((comp.name, mode.name, representatives[0]))
    return tabulated


@dataclass(frozen=True)
class DictionaryEntry:
    """One tabulated fault: its label and probe signature."""

    component: str
    mode: str
    signature: Tuple[float, ...]


@dataclass(frozen=True)
class DictionaryMatch:
    """Nearest-entry lookup result."""

    component: str
    mode: str
    distance: float

    @property
    def is_healthy(self) -> bool:
        return self.component == ""


class FaultDictionary:
    """Signature table built by exhaustive fault simulation.

    Args:
        circuit: the golden design.
        probes: nets whose voltages form the signature.
        faults: (component, mode, Fault) triples to tabulate; defaults to
            the common catalogue over every component.
    """

    def __init__(
        self,
        circuit: Circuit,
        probes: Sequence[str],
        faults: Optional[Sequence[Tuple[str, str, Fault]]] = None,
    ) -> None:
        self.circuit = circuit
        self.probes = list(probes)
        self.entries: List[DictionaryEntry] = []
        self._build(faults if faults is not None else dictionary_faults(circuit))

    def _signature(self, op: OperatingPoint) -> Tuple[float, ...]:
        return tuple(op.voltage(net) for net in self.probes)

    def _build(self, faults: Sequence[Tuple[str, str, Fault]]) -> None:
        golden_op = DCSolver(self.circuit).solve()
        self.healthy_signature = self._signature(golden_op)
        for component, mode, fault in faults:
            try:
                op = DCSolver(apply_fault(self.circuit, fault)).solve()
            except (SimulationError, ValueError):
                continue
            self.entries.append(
                DictionaryEntry(component, mode, self._signature(op))
            )

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    def lookup(
        self, readings: Sequence[float], healthy_margin: float = 0.05
    ) -> DictionaryMatch:
        """Nearest tabulated signature to the measured one.

        ``healthy_margin`` (volts, RMS) decides when the unit is declared
        healthy instead.  This is the whole diagnostic procedure — no
        reasoning, no degrees, no explanation.
        """
        if len(readings) != len(self.probes):
            raise ValueError(
                f"expected {len(self.probes)} readings, got {len(readings)}"
            )
        healthy_distance = _rms(readings, self.healthy_signature)
        if healthy_distance <= healthy_margin:
            return DictionaryMatch("", "", healthy_distance)
        best: Optional[DictionaryMatch] = None
        for entry in self.entries:
            distance = _rms(readings, entry.signature)
            if best is None or distance < best.distance:
                best = DictionaryMatch(entry.component, entry.mode, distance)
        if best is None or healthy_distance < best.distance:
            return DictionaryMatch("", "", healthy_distance)
        return best

    def lookup_op(self, op: OperatingPoint, healthy_margin: float = 0.05) -> DictionaryMatch:
        return self.lookup(self._signature(op), healthy_margin)


def _rms(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)) / max(len(a), 1))
