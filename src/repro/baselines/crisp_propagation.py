"""DIANA-style crisp-interval diagnosis baseline.

Same conflict-recognition machinery as FLAMES, run over crispified
values: every fuzzy interval is replaced by its support (slopes folded
into hard bounds), and the engine's conflict threshold is raised so that
only *frank* conflicts (empty intersections) yield nogoods — crisp
intervals have no notion of a partial conflict.  The comparison
benchmarks measure the two behaviours the paper attributes to this
representation:

* **masking** — a slightly faulty value inside the accumulated bounds is
  accepted, so slight soft faults disappear (figure 2's amp2 = 1.8);
* **unweighted candidates** — every nogood has degree 1, so the expert
  gets no ordering over candidates (figure 5's closing remark).
"""

from __future__ import annotations

from typing import Sequence

from repro.circuit.measurements import Measurement
from repro.circuit.netlist import Circuit
from repro.core.diagnosis import DiagnosisResult, Flames, FlamesConfig
from repro.core.predict import Prediction
from repro.fuzzy import FuzzyInterval

__all__ = ["crispify", "CrispDiagnoser"]

#: Conflicts below this degree are invisible to a crisp engine; only an
#: (almost) empty intersection counts.
_CRISP_THRESHOLD = 0.999


def crispify(value: FuzzyInterval) -> FuzzyInterval:
    """Fold a fuzzy interval's slopes into hard bounds (its support)."""
    lo, hi = value.support
    return FuzzyInterval.crisp_interval(lo, hi)


class CrispDiagnoser(Flames):
    """FLAMES's engine degraded to crisp intervals (the DIANA baseline)."""

    def __init__(self, circuit: Circuit, config: FlamesConfig = None) -> None:
        base = config or FlamesConfig()
        crisp_config = FlamesConfig(
            assumable_nodes=base.assumable_nodes,
            conflict_threshold=_CRISP_THRESHOLD,
            max_candidate_size=base.max_candidate_size,
            t_norm=base.t_norm,
            hard_threshold=base.hard_threshold,
            propagator=base.propagator,
        )
        super().__init__(circuit, crisp_config)
        self._crispify_network()

    # ------------------------------------------------------------------
    def _crispify_network(self) -> None:
        """Replace every fuzzy constant inside the constraint network."""
        for constraint in self.network.constraints:
            for attribute in ("rhs", "k", "interval"):
                value = getattr(constraint, attribute, None)
                if isinstance(value, FuzzyInterval):
                    setattr(constraint, attribute, crispify(value))

    def _ensure_nominal(self) -> None:
        super()._ensure_nominal()
        self._nominal = {
            name: Prediction(crispify(p.value), p.support)
            for name, p in self._nominal.items()
        }

    # ------------------------------------------------------------------
    def diagnose(self, measurements: Sequence[Measurement]) -> DiagnosisResult:
        """Diagnose with crispified measurements (instrument bounds only)."""
        crisp_measurements = [
            Measurement(m.point, crispify(m.value)) for m in measurements
        ]
        return super().diagnose(crisp_measurements)
