"""GDE/FIS-style probabilistic test selection (the paper's §8 foil).

"Many systems, such as FIS and GDE, used the probabilistic approach,
which is a numerical approach" with "heavy calculus and hard assumptions
(a priori probabilities, mutual exclusiveness of hypotheses, etc.)".
This module implements exactly that foil: crisp per-component fault
probabilities, Shannon entropy, and minimum-expected-entropy probe
selection, plus a random prober as the lower bound for the strategy
benchmark.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.diagnosis import DiagnosisResult, Flames

__all__ = ["shannon_entropy", "GdeTestPlanner", "RandomProbePlanner", "CrispTest"]


def shannon_entropy(probabilities: Sequence[float]) -> float:
    """``-sum p log2 p`` over independent per-component fault bits."""
    total = 0.0
    for p in probabilities:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability {p} outside [0, 1]")
        for q in (p, 1.0 - p):
            if q > 0.0:
                total -= q * math.log2(q)
    return total


@dataclass(frozen=True)
class CrispTest:
    """A candidate probe with its crisp expected entropy."""

    point: str
    expected: float
    conflict_probability: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CrispTest({self.point} E={self.expected:.3f})"


class GdeTestPlanner:
    """Minimum expected Shannon entropy probe selection.

    Components get a prior fault probability; nogood membership raises
    the posterior (scaled by suspicion degree, so FLAMES's fuzzy output
    can feed this planner for an apples-to-apples comparison).
    """

    def __init__(self, engine: Flames, prior: float = 0.02) -> None:
        if not 0.0 < prior < 1.0:
            raise ValueError("prior must be in (0, 1)")
        self.engine = engine
        self.prior = prior

    # ------------------------------------------------------------------
    def probabilities(self, result: DiagnosisResult) -> Dict[str, float]:
        """Posterior fault probability per component."""
        posteriors: Dict[str, float] = {}
        for comp in self.engine.circuit.components:
            suspicion = result.suspicions.get(comp.name, 0.0)
            # Implicated components move from the prior toward certainty
            # proportionally to how seriously they are implicated.
            posteriors[comp.name] = self.prior + (0.5 - self.prior) * suspicion
        return posteriors

    def system_entropy(self, result: DiagnosisResult) -> float:
        return shannon_entropy(list(self.probabilities(result).values()))

    # ------------------------------------------------------------------
    def candidate_points(
        self, result: DiagnosisResult, available: Optional[Sequence[str]] = None
    ) -> List[str]:
        measured = {m.point for m in result.measurements}
        pool = (
            list(available)
            if available is not None
            else [
                name
                for name in self.engine.network.variables
                if name.startswith("V(") and name != "V(0)"
            ]
        )
        return sorted(p for p in pool if p not in measured)

    def recommend(
        self,
        result: DiagnosisResult,
        available: Optional[Sequence[str]] = None,
    ) -> List[CrispTest]:
        probabilities = self.probabilities(result)
        support = self.engine.prediction_support()
        tests: List[CrispTest] = []
        for point in self.candidate_points(result, available):
            supporters = support.get(point, frozenset())
            if supporters:
                p_conflict = sum(probabilities[s] for s in supporters if s in probabilities)
                p_conflict = min(p_conflict / len(supporters), 1.0)
            else:
                p_conflict = 0.0

            def entropy_after(raise_supporters: bool) -> float:
                post = dict(probabilities)
                for name in supporters:
                    if name not in post:
                        continue
                    if raise_supporters:
                        post[name] = post[name] + (1.0 - post[name]) * 0.5
                    else:
                        post[name] = post[name] * 0.5
                return shannon_entropy(list(post.values()))

            expected = (1.0 - p_conflict) * entropy_after(False) + p_conflict * entropy_after(True)
            tests.append(CrispTest(point, expected, p_conflict))
        tests.sort(key=lambda t: (t.expected, t.point))
        return tests

    def best(
        self, result: DiagnosisResult, available: Optional[Sequence[str]] = None
    ) -> Optional[CrispTest]:
        ranked = self.recommend(result, available)
        return ranked[0] if ranked else None


class RandomProbePlanner:
    """Uniformly random probe selection — the strategy lower bound."""

    def __init__(self, engine: Flames, seed: int = 0) -> None:
        self.engine = engine
        self.rng = random.Random(seed)

    def best(
        self, result: DiagnosisResult, available: Optional[Sequence[str]] = None
    ) -> Optional[CrispTest]:
        measured = {m.point for m in result.measurements}
        pool = (
            list(available)
            if available is not None
            else [
                name
                for name in self.engine.network.variables
                if name.startswith("V(") and name != "V(0)"
            ]
        )
        pool = sorted(p for p in pool if p not in measured)
        if not pool:
            return None
        return CrispTest(self.rng.choice(pool), float("nan"), float("nan"))
