"""The downstream-user workflow: from a netlist file to a repair ticket.

1. Load the golden design from a SPICE-subset netlist.
2. Receive a faulty unit (simulated here), measure a few nodes.
3. Run a troubleshooting session: diagnose, refine with fault modes,
   let the planner pick extra probes, confirm the repair.
4. Persist the shop's accumulated experience to disk.

Run:  python examples/netlist_workflow.py
"""

import tempfile
from pathlib import Path

from repro.circuit import DCSolver, Fault, FaultKind, apply_fault, parse_netlist
from repro.core import ExperienceBase, TroubleshootingSession

BOARD = """
.title sensor front-end
* bias divider into an emitter follower driving a load
Vcc vcc 0 15
Rb1 vcc base 100k tol=0.05
Rb2 base 0 47k tol=0.05
Q1 vcc base out 200 vbe=0.7
Rload out 0 4.7k tol=0.05
Rsense out tap 1k tol=0.05
Rtap tap 0 9k tol=0.05
"""


def main() -> None:
    golden = parse_netlist(BOARD)
    print(f"loaded golden design {golden.name!r} "
          f"({len(golden.components)} components)")

    # A returned unit: the load resistor has drifted badly.
    fault = Fault(FaultKind.PARAM, "Rload", value=9.4e3)
    bench = DCSolver(apply_fault(golden, fault)).solve()
    print(f"(hidden defect: {fault.describe()})\n")

    shop_memory = ExperienceBase()
    session = TroubleshootingSession(golden, experience=shop_memory)

    # First reading: the sense tap.
    session.observe_probe(bench, "tap", imprecision=0.01)
    print(f"after probing tap: healthy={session.unit_looks_healthy}")

    # Let the strategy unit choose follow-up probes.
    for _ in range(3):
        if session.unit_looks_healthy:
            break
        recommendation = session.recommend_next()
        if recommendation is None:
            break
        net = recommendation.point[2:-1]
        print(f"planner recommends {recommendation.point}")
        session.observe_probe(bench, net, imprecision=0.01)

    print()
    print(session.report(title=f"repair ticket — {golden.name}"))

    confirmed = session.refinements(top_k=1)
    if confirmed:
        best = confirmed[0]
        print(f"\ntechnician confirms: {best.component} ({best.mode})")
        session.confirm(best.component, best.mode)

    # The shop's memory survives the process.
    store = Path(tempfile.gettempdir()) / "flames_shop.json"
    shop_memory.save(store)
    print(f"experience saved to {store} "
          f"({len(ExperienceBase.load(store))} rule(s))")


if __name__ == "__main__":
    main()
