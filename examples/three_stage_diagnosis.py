"""The paper's headline workload: the figure-6 three-stage amplifier.

Injects each figure-7 defect, probes Vs/V2/V1, and walks through the
full FLAMES pipeline: fuzzy-interval conflict recognition, weighted
nogoods, ranked candidates, and the knowledge base's fault-mode
refinement.

Run:  python examples/three_stage_diagnosis.py
"""

from repro.circuit import DCSolver, apply_fault, probe_all, three_stage_amplifier
from repro.core import Flames
from repro.core.knowledge import KnowledgeBase
from repro.core.report import render_consistency_row, render_report
from repro.experiments.figure7 import FIGURE7_SCENARIOS


def main() -> None:
    golden = three_stage_amplifier()
    engine = Flames(golden)
    knowledge = KnowledgeBase(golden)

    print("nominal predictions (tolerances propagated):")
    predictions = engine.predictions()
    for point in ("V(v1)", "V(v2)", "V(vs)"):
        support = ",".join(sorted(engine.prediction_support()[point]))
        print(f"  {point} = {predictions[point]!r}   supported by {{{support}}}")

    for scenario in FIGURE7_SCENARIOS:
        print()
        print("#" * 60)
        print(f"defect: {scenario.paper_defect}  ({scenario.fault.describe()})")
        faulty_op = DCSolver(apply_fault(golden, scenario.fault)).solve()
        measurements = probe_all(faulty_op, ["vs", "v2", "v1"], imprecision=0.02)
        result = engine.diagnose(measurements)
        refinements = knowledge.refine(result.suspicions, measurements, top_k=4)
        print(render_report(result, refinements, title="diagnosis"))
        print("figure-7 row:", render_consistency_row(result, ["V(vs)", "V(v2)", "V(v1)"]))


if __name__ == "__main__":
    main()
