"""Learning from experience: a repair-shop simulation.

A stream of faulty units arrives; each confirmed diagnosis is recorded
as a symptom-failure rule (paper §7).  When a later unit shows a symptom
signature the shop has seen before, the learned rule re-ranks the
candidates — watch the true culprit climb to rank 1.

Run:  python examples/learning_workshop.py
"""

from repro.circuit import DCSolver, Fault, FaultKind, apply_fault, probe_all, three_stage_amplifier
from repro.core import Flames
from repro.core.learning import ExperienceBase, SymptomSignature

WORK_ORDERS = [
    ("unit 001", "R2", Fault(FaultKind.SHORT, "R2")),
    ("unit 002", "R3", Fault(FaultKind.OPEN, "R3")),
    ("unit 003", "R2", Fault(FaultKind.SHORT, "R2")),  # repeat symptom
    ("unit 004", "R3", Fault(FaultKind.OPEN, "R3")),  # repeat symptom
    ("unit 005", "R6", Fault(FaultKind.OPEN, "R6")),  # novel symptom
]


def rank_of(scores, culprit):
    ordered = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return next(i for i, (name, _) in enumerate(ordered, 1) if name == culprit)


def main() -> None:
    golden = three_stage_amplifier()
    engine = Flames(golden)
    shop = ExperienceBase(base_certainty=0.6)

    for order, culprit, fault in WORK_ORDERS:
        bench = DCSolver(apply_fault(golden, fault)).solve()
        measurements = probe_all(bench, ["vs", "v2", "v1"], imprecision=0.02)
        result = engine.diagnose(measurements)
        signature = SymptomSignature.from_result(result)

        hits = shop.suggest(signature)
        plain_rank = rank_of(result.suspicions, culprit)
        print(f"{order}: symptoms {signature!r}")
        if hits:
            boosted = shop.boost_suspicions(result.suspicions, signature)
            print(
                f"  experience fires: {[repr(rule) for rule, _ in hits[:2]]}"
            )
            print(
                f"  culprit {culprit}: rank {plain_rank} from evidence alone, "
                f"rank {rank_of(boosted, culprit)} with experience"
            )
        else:
            print(f"  no matching experience; culprit {culprit} at rank {plain_rank}")

        # The technician confirms the repair; the shop learns.
        rule = shop.record_result(result, culprit, fault.kind.value)
        print(f"  recorded -> {rule!r}")
        print()

    print(f"knowledge after {shop.episode_count} work orders: {len(shop)} rules")
    for rule in shop.rules:
        print(f"  {rule!r}")


if __name__ == "__main__":
    main()
