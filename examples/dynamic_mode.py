"""Dynamic mode: diagnosing a fault the DC engine cannot see.

An open capacitor in an RC low-pass ladder leaves the DC operating point
untouched (capacitors are open at DC anyway) — the static engine
declares the unit healthy.  The step response tells a different story,
and the dynamic diagnoser turns it into weighted candidates.

Run:  python examples/dynamic_mode.py
"""

from repro.circuit import (
    DCSolver,
    Fault,
    FaultKind,
    TransientSolver,
    apply_fault,
    probe_all,
    rc_lowpass,
    step_waveform,
)
from repro.core import DynamicDiagnoser, Flames


def ascii_plot(times, golden, faulty, width=60, height=10) -> str:
    """A tiny ASCII overlay of the two step responses."""
    v_max = max(max(golden), max(faulty), 1e-9)
    rows = []
    for level in range(height, -1, -1):
        threshold = v_max * level / height
        row = []
        for i in range(0, len(times), max(len(times) // width, 1)):
            g_above = golden[i] >= threshold
            f_above = faulty[i] >= threshold
            row.append("*" if f_above and g_above else "x" if f_above else "." if g_above else " ")
        rows.append("".join(row))
    return "\n".join(rows) + "\n(* both, . golden only, x faulty only)"


def main() -> None:
    golden = rc_lowpass(2)
    waveforms = {"Vin": step_waveform(0.0, 5.0)}
    fault = Fault(FaultKind.PARAM, "C1", "capacitance", 1e-12)  # open C1
    faulty = apply_fault(golden, fault)
    print(f"injected: {fault.describe()} (an open capacitor)")

    # Static view: DC probes on the settled unit.
    op = DCSolver(faulty).solve()
    static = Flames(golden).diagnose(probe_all(op, ["m1", "m2"], imprecision=0.01))
    print(f"\nstatic engine verdict: {'HEALTHY' if static.is_consistent else 'faulty'}"
          "  <- blind: capacitors are open at DC")

    # Dynamic view: the step response.
    diagnoser = DynamicDiagnoser(golden, waveforms, dt=5e-5, duration=5e-3)
    golden_resp = diagnoser.simulate_golden()
    faulty_resp = TransientSolver(
        faulty, waveforms=waveforms, dt=5e-5, initial="dc"
    ).run(5e-3)

    print("\nstep response at m2 (golden vs faulty):")
    print(ascii_plot(golden_resp.times, golden_resp.voltage("m2"), faulty_resp.voltage("m2")))

    result = diagnoser.diagnose(faulty_resp)
    print(f"\ndynamic engine verdict: {'healthy' if result.is_consistent else 'FAULTY'}")
    print("sample consistencies (net, time -> Dc):")
    for (net, t), cons in sorted(result.consistencies.items()):
        if net != "in":
            print(f"  {net} @ {t * 1e3:.0f} ms: Dc = {cons.degree:.2f}")
    print("suspicions:", result.suspicions)
    print("candidates:", result.diagnoses[:4])


if __name__ == "__main__":
    main()
