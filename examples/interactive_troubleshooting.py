"""A troubleshooting session driven by the best-test strategy unit.

Starts from a single output measurement on a faulty three-stage
amplifier and lets the fuzzy-entropy planner decide which node to probe
next, re-diagnosing after every probe — the workflow the paper's §8
describes ("recommend at any point the next best test to make").

Run:  python examples/interactive_troubleshooting.py
"""

from repro.circuit import DCSolver, Fault, FaultKind, apply_fault, probe, three_stage_amplifier
from repro.core import Flames
from repro.core.strategy import BestTestPlanner


def main() -> None:
    golden = three_stage_amplifier()
    engine = Flames(golden)
    planner = BestTestPlanner(engine)

    # The hidden defect the "technician" is hunting.
    fault = Fault(FaultKind.NODE_OPEN, "T1", pin="b")
    bench = DCSolver(apply_fault(golden, fault)).solve()
    print(f"(hidden defect: {fault.describe()})")

    measurements = [probe(bench, "vs", imprecision=0.02)]
    print(f"step 0: measure the output -> {measurements[0]}")

    for step in range(1, 7):
        result = engine.diagnose(measurements)
        ranked = result.ranked_components()
        print(f"  suspicions: {[f'{n}:{s:.2f}' for n, s in ranked[:5]]}")

        recommendation = planner.best(result)
        if recommendation is None:
            print("  every point has been probed")
            break
        entropy_now = planner.system_entropy(result)
        print(
            f"step {step}: entropy ~{entropy_now.centroid:.2f} bits; "
            f"planner recommends {recommendation.point} "
            f"(expected entropy {recommendation.score:.2f})"
        )
        net = recommendation.point[2:-1]
        measurement = probe(bench, net, imprecision=0.02)
        print(f"  probing -> {measurement}")
        measurements.append(measurement)

    result = engine.diagnose(measurements)
    print()
    print("final ranking:")
    for name, score in result.ranked_components():
        marker = " <-- injected stage" if name in ("T1", "R1", "R3") else ""
        print(f"  {name}: {score:.2f}{marker}")


if __name__ == "__main__":
    main()
