"""Quickstart: diagnose a soft fault in a voltage divider.

Builds a two-resistor divider, injects a parametric drift, synthesises a
bench measurement, and runs the FLAMES engine end to end.

Run:  python examples/quickstart.py
"""

from repro.circuit import (
    Circuit,
    DCSolver,
    Fault,
    FaultKind,
    GROUND,
    Resistor,
    VoltageSource,
    apply_fault,
    probe,
)
from repro.core import Flames
from repro.core.report import render_report


def build_divider() -> Circuit:
    """A 12 V supply driving a 10k/10k divider (5 % parts)."""
    circuit = Circuit("divider")
    circuit.add(VoltageSource("Vin", 12.0, p="top", n=GROUND))
    circuit.add(Resistor("Rtop", 10e3, 0.05, a="top", b="mid"))
    circuit.add(Resistor("Rbot", 10e3, 0.05, a="mid", b=GROUND))
    return circuit


def main() -> None:
    golden = build_divider()

    # The unit under test: Rbot drifted 40 % high (a soft fault).
    fault = Fault(FaultKind.PARAM, "Rbot", value=14e3)
    faulty = apply_fault(golden, fault)
    print(f"injected: {fault.describe()}")

    # Bench: measure the divider midpoint on the faulty unit.
    operating_point = DCSolver(faulty).solve()
    measurement = probe(operating_point, "mid", imprecision=0.02)
    print(f"bench reads {measurement}")

    # FLAMES: model-based diagnosis from that single measurement.
    engine = Flames(golden)
    result = engine.diagnose([measurement])
    print()
    print(render_report(result, title="quickstart diagnosis"))

    # The fuzzy part: the same measurement against the nominal prediction.
    consistency = result.consistencies["V(mid)"]
    print()
    print(
        f"degree of consistency Dc = {consistency.degree:.2f} "
        f"({'measured high' if consistency.direction > 0 else 'measured low'})"
    )


if __name__ == "__main__":
    main()
